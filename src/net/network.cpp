#include "net/network.h"

#include <cassert>
#include <unordered_map>

namespace livesec::net {

Network::Network() : Network(ctrl::Controller::Config{}) {}

Network::Network(ctrl::Controller::Config controller_config)
    : controller_config_(controller_config), controller_(sim_, controller_config) {}

void Network::enable_wire_encoding() {
  wire_encoding_ = true;
  for (auto& channel : channels_) channel->set_wire_encoding(true);
  if (ha_) ha_->enable_wire_encoding();
}

void Network::enable_ha(std::size_t standbys, ha::HaCluster::Config config, ha::FaultPlan plan) {
  assert(!ha_ && "enable_ha called twice");
  assert(channels_.empty() && "enable_ha must precede AS switch / AP creation");
  ha_ = std::make_unique<ha::HaCluster>(sim_, config, plan);
  ha_->add_node(controller_);
  for (std::size_t i = 0; i < standbys; ++i) {
    standby_controllers_.push_back(
        std::make_unique<ctrl::Controller>(sim_, controller_config_));
    ha_->add_node(*standby_controllers_.back());
  }
}

MacAddress Network::allocate_mac() {
  // Locally administered unicast range 02:00:00:xx:xx:xx.
  return MacAddress::from_uint64(0x020000000000ull + next_node_index_++);
}

MacAddress Network::next_mac() const {
  return MacAddress::from_uint64(0x020000000000ull + next_node_index_);
}

Ipv4Address Network::allocate_ip() {
  const std::uint64_t n = next_node_index_;  // already advanced by allocate_mac
  return Ipv4Address(static_cast<std::uint32_t>((10u << 24) | (n & 0xFFFFFF)));
}

Ipv4Address Network::next_ip() const {
  return Ipv4Address(static_cast<std::uint32_t>((10u << 24) | (next_node_index_ & 0xFFFFFF)));
}

void Network::wire(sim::Port& a, sim::Port& b, double bandwidth_bps, SimTime propagation) {
  sim::Link::Config config;
  config.bandwidth_bps = bandwidth_bps;
  config.propagation_delay = propagation;
  links_.push_back(sim::connect(sim_, a, b, config));
}

sw::EthernetSwitch& Network::add_legacy_switch(const std::string& name) {
  legacy_.push_back(std::make_unique<sw::EthernetSwitch>(sim_, name));
  legacy_graph_.add_node(static_cast<std::uint32_t>(legacy_.size() - 1));
  return *legacy_.back();
}

void Network::connect_legacy(sw::EthernetSwitch& a, sw::EthernetSwitch& b,
                             double bandwidth_bps) {
  sim::Port& pa = a.add_port();
  sim::Port& pb = b.add_port();
  wire(pa, pb, bandwidth_bps);

  auto index_of = [this](const sw::EthernetSwitch& s) -> std::uint32_t {
    for (std::size_t i = 0; i < legacy_.size(); ++i) {
      if (legacy_[i].get() == &s) return static_cast<std::uint32_t>(i);
    }
    assert(false && "legacy switch not owned by this network");
    return 0;
  };
  sw::SpanningTree::Edge edge;
  edge.a = {index_of(a), pa.id()};
  edge.b = {index_of(b), pb.id()};
  legacy_graph_.add_edge(edge);
}

void Network::connect_legacy_bonded(sw::EthernetSwitch& a, sw::EthernetSwitch& b, int n_links,
                                    double bandwidth_bps) {
  std::vector<PortId> a_members;
  std::vector<PortId> b_members;
  for (int i = 0; i < n_links; ++i) {
    sim::Port& pa = a.add_port();
    sim::Port& pb = b.add_port();
    wire(pa, pb, bandwidth_bps);
    a_members.push_back(pa.id());
    b_members.push_back(pb.id());
  }
  a.create_bond(a_members);
  b.create_bond(b_members);

  auto index_of = [this](const sw::EthernetSwitch& s) -> std::uint32_t {
    for (std::size_t i = 0; i < legacy_.size(); ++i) {
      if (legacy_[i].get() == &s) return static_cast<std::uint32_t>(i);
    }
    assert(false && "legacy switch not owned by this network");
    return 0;
  };
  // One logical edge in the spanning-tree graph (the bond is one link).
  sw::SpanningTree::Edge edge;
  edge.a = {index_of(a), a_members.front()};
  edge.b = {index_of(b), b_members.front()};
  legacy_graph_.add_edge(edge);
}

void Network::finalize_legacy() {
  for (const auto& edge : legacy_graph_.compute_blocked()) {
    // Blocking one end of a bonded edge must block every member, or the
    // remaining members would still form the loop.
    auto block_all = [](sw::EthernetSwitch& sw, PortId port) {
      const PortId bond = sw.bond_of_member(port);
      if (bond >= sw::EthernetSwitch::kBondBase) {
        for (PortId member : sw.bond_members(bond)) sw.set_port_blocked(member, true);
      } else {
        sw.set_port_blocked(port, true);
      }
    };
    block_all(*legacy_[edge.a.node], edge.a.port);
    block_all(*legacy_[edge.b.node], edge.b.port);
  }
}

sw::OpenFlowSwitch& Network::add_as_switch(const std::string& name, sw::EthernetSwitch& legacy,
                                           double uplink_bps) {
  const DatapathId dpid = next_dpid_++;
  as_switches_.push_back(std::make_unique<sw::OpenFlowSwitch>(sim_, name, dpid));
  sw::OpenFlowSwitch& as_switch = *as_switches_.back();

  sim::Port& uplink = as_switch.add_port(sw::PortRole::kLegacySwitching);
  wire(uplink, legacy.add_port(), uplink_bps);
  controller_.register_ls_port(dpid, uplink.id());

  channels_.push_back(std::make_unique<of::SecureChannel>(sim_, as_switch, controller_));
  channels_.back()->set_wire_encoding(wire_encoding_);
  controller_.attach_channel(dpid, *channels_.back(), topo::NodeKind::kAsSwitch);
  if (ha_) ha_->manage_switch(as_switch, *channels_.back(), topo::NodeKind::kAsSwitch);
  as_switch.connect_controller(*channels_.back());
  return as_switch;
}

sw::WifiAccessPoint& Network::add_wifi_ap(const std::string& name, sw::EthernetSwitch& legacy,
                                          double uplink_bps) {
  const DatapathId dpid = next_dpid_++;
  wifi_aps_.push_back(std::make_unique<sw::WifiAccessPoint>(sim_, name, dpid));
  sw::WifiAccessPoint& ap = *wifi_aps_.back();

  sim::Port& uplink = ap.add_uplink_port();
  wire(uplink, legacy.add_port(), uplink_bps);
  controller_.register_ls_port(dpid, uplink.id());

  channels_.push_back(std::make_unique<of::SecureChannel>(sim_, ap, controller_));
  channels_.back()->set_wire_encoding(wire_encoding_);
  controller_.attach_channel(dpid, *channels_.back(), topo::NodeKind::kWifiAp);
  if (ha_) ha_->manage_switch(ap, *channels_.back(), topo::NodeKind::kWifiAp);
  ap.connect_controller(*channels_.back());
  return ap;
}

Host& Network::add_host(const std::string& name, sw::OpenFlowSwitch& as_switch,
                        double access_bps, SimTime propagation) {
  const MacAddress mac = allocate_mac();
  const Ipv4Address ip = allocate_ip();
  hosts_.push_back(std::make_unique<Host>(sim_, name, mac, ip));
  Host& host = *hosts_.back();
  wire(host.port(0), as_switch.add_port(sw::PortRole::kNetworkPeriphery), access_bps,
       propagation);
  return host;
}

Host& Network::add_wifi_host(const std::string& name, sw::WifiAccessPoint& ap) {
  const MacAddress mac = allocate_mac();
  const Ipv4Address ip = allocate_ip();
  hosts_.push_back(std::make_unique<Host>(sim_, name, mac, ip));
  Host& host = *hosts_.back();
  // The station's own radio link; aggregate airtime is enforced by the AP.
  wire(host.port(0), ap.add_station_port(), ap.radio_bps());
  return host;
}

Host& Network::add_legacy_host(const std::string& name, sw::EthernetSwitch& legacy,
                               double access_bps, SimTime propagation) {
  const MacAddress mac = allocate_mac();
  const Ipv4Address ip = allocate_ip();
  hosts_.push_back(std::make_unique<Host>(sim_, name, mac, ip));
  Host& host = *hosts_.back();
  wire(host.port(0), legacy.add_port(), access_bps, propagation);
  return host;
}

svc::ServiceElement& Network::add_service_element(svc::ServiceType type,
                                                  sw::OpenFlowSwitch& as_switch,
                                                  svc::ServiceElement::Config config) {
  if (config.se_id == 0) config.se_id = next_se_id_++;
  if (config.mac.is_zero()) config.mac = allocate_mac();
  if (config.ip.is_zero()) config.ip = allocate_ip();
  config.service = type;
  if (config.cert_token == 0) {
    config.cert_token = controller_.certification().issue(config.se_id);
  }
  service_elements_.push_back(std::make_unique<svc::ServiceElement>(
      sim_, "se" + std::to_string(config.se_id), config));
  svc::ServiceElement& se = *service_elements_.back();
  // Virtual NIC: virtio-class gigabit into the hosting OvS.
  wire(se.port(0), as_switch.add_port(sw::PortRole::kNetworkPeriphery), 1e9);
  return se;
}

void Network::detach_host(Host& host) {
  // Destroy the link attached to the host's NIC.
  for (auto it = links_.begin(); it != links_.end(); ++it) {
    sim::Link* link = it->get();
    if (host.port(0).link() == link) {
      links_.erase(it);
      return;
    }
  }
}

void Network::migrate_service_element(svc::ServiceElement& se, sw::OpenFlowSwitch& new_switch) {
  for (auto it = links_.begin(); it != links_.end(); ++it) {
    if (se.port(0).link() == it->get()) {
      links_.erase(it);
      break;
    }
  }
  wire(se.port(0), new_switch.add_port(sw::PortRole::kNetworkPeriphery), 1e9);
}

void Network::move_host(Host& host, sw::OpenFlowSwitch& new_switch, double access_bps) {
  detach_host(host);
  wire(host.port(0), new_switch.add_port(sw::PortRole::kNetworkPeriphery), access_bps);
  host.announce();
}

void Network::start(SimTime settle) {
  assert(!started_ && "start() must be called once");
  started_ = true;
  controller_.start_housekeeping();
  if (ha_) ha_->start();
  for (auto& se : service_elements_) se->start();
  // Stagger announcements a little so ARP packet-ins don't all share one
  // timestamp (keeps event ordering realistic; determinism is unaffected).
  SimTime offset = 0;
  for (auto& host : hosts_) {
    sim_.schedule(offset, [h = host.get()]() { h->announce(); });
    offset += 100 * kMicrosecond;
  }
  run_for(settle);
}

void Network::run_for(SimTime duration) { sim_.run_until(sim_.now() + duration); }

}  // namespace livesec::net
