// Traditional on-path security middlebox — the baseline architecture the
// paper argues against (§I: middleboxes at the gateway create a "single
// point of performance bottleneck" and require "complicated policies ...
// coercing end-to-end flows to traverse specified middlebox").
#pragma once

#include <cstdint>

#include "services/ids/ids_engine.h"
#include "sim/node.h"

namespace livesec::net {

/// A bump-in-the-wire middlebox: two ports (0 = inside, 1 = outside).
/// Every packet is inspected under a finite processing budget and forwarded
/// out the opposite port. There is no controller, no off-path steering and
/// no load balancing: capacity is fixed at deployment time, which is exactly
/// the limitation LiveSec's Access-Switching layer removes.
class InlineMiddlebox : public sim::Node {
 public:
  struct Config {
    /// Inspection rate (same class of appliance as one SE VM).
    double processing_bps = 500e6;
    SimTime per_packet_overhead = 1 * kMicrosecond;
    std::size_t max_queue_packets = 4096;
  };

  InlineMiddlebox(sim::Simulator& sim, std::string name);
  InlineMiddlebox(sim::Simulator& sim, std::string name, Config config);

  void handle_packet(PortId in_port, pkt::PacketPtr packet) override;

  std::uint64_t processed_packets() const { return processed_packets_; }
  std::uint64_t processed_bytes() const { return processed_bytes_; }
  std::uint64_t overload_drops() const { return overload_drops_; }
  std::uint64_t alerts() const { return alerts_; }

  sim::Port& inside() { return port(0); }
  sim::Port& outside() { return port(1); }

 private:
  Config config_;
  svc::ids::IdsEngine engine_;
  SimTime busy_until_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t processed_packets_ = 0;
  std::uint64_t processed_bytes_ = 0;
  std::uint64_t overload_drops_ = 0;
  std::uint64_t alerts_ = 0;
};

}  // namespace livesec::net
