// Whole-deployment assembly: builds LiveSec networks like the paper's FIT
// building testbed (Figure 6) out of legacy switches, AS switches, OF Wi-Fi
// APs, hosts, service elements and one controller.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "ha/cluster.h"
#include "net/host.h"
#include "services/service_element.h"
#include "sim/simulator.h"
#include "switching/ethernet_switch.h"
#include "switching/openflow_switch.h"
#include "switching/spanning_tree.h"
#include "switching/wifi_ap.h"

namespace livesec::net {

/// Owns a complete simulated LiveSec deployment. Components are created
/// through add_* methods, wired automatically (links, secure channels, LS
/// uplink registration, SE certification), then driven via start()/run_for().
class Network {
 public:
  Network();
  explicit Network(ctrl::Controller::Config controller_config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator& sim() { return sim_; }
  ctrl::Controller& controller() { return controller_; }

  /// Runs the controller as an active-standby cluster: `standbys` extra
  /// Controller instances are created (same Config as the primary) and every
  /// subsequently added AS switch / AP is registered with the cluster, which
  /// replicates state to the standbys and handles failover. Must be called
  /// before any AS switch or AP is added. The primary controller
  /// (controller()) is the initial active.
  void enable_ha(std::size_t standbys, ha::HaCluster::Config config = {},
                 ha::FaultPlan plan = {});
  /// Null unless enable_ha was called.
  ha::HaCluster* ha_cluster() { return ha_.get(); }
  /// The controller currently holding mastership (== controller() until a
  /// failover promotes a standby).
  ctrl::Controller& active_controller() {
    return ha_ ? ha_->active_controller() : controller_;
  }

  /// Routes every secure-channel message through the byte-level OpenFlow
  /// wire codec (as a real TCP/TLS control connection would). Applies to
  /// channels created before and after the call.
  void enable_wire_encoding();

  // --- Legacy-Switching layer -------------------------------------------------
  sw::EthernetSwitch& add_legacy_switch(const std::string& name);
  /// Interconnects two legacy switches (default 10 GbE backbone links).
  void connect_legacy(sw::EthernetSwitch& a, sw::EthernetSwitch& b, double bandwidth_bps = 10e9);

  /// Interconnects two legacy switches with `n_links` parallel links
  /// aggregated into a bond on each side — the ECMP building block of paper
  /// §III.B. Flows hash across members; aggregate capacity = n * bandwidth.
  void connect_legacy_bonded(sw::EthernetSwitch& a, sw::EthernetSwitch& b, int n_links,
                             double bandwidth_bps = 10e9);
  /// Computes the spanning tree over legacy links and blocks redundant
  /// ports (must be called when the legacy graph has loops).
  void finalize_legacy();

  // --- Access-Switching layer --------------------------------------------------
  /// Adds an OvS-style AS switch uplinked to `legacy` (default GbE, matching
  /// the paper's Xeon + 4x GbE NIC build).
  sw::OpenFlowSwitch& add_as_switch(const std::string& name, sw::EthernetSwitch& legacy,
                                    double uplink_bps = 1e9);
  /// Adds an OF Wi-Fi AP uplinked to `legacy` (Pantou-class).
  sw::WifiAccessPoint& add_wifi_ap(const std::string& name, sw::EthernetSwitch& legacy,
                                   double uplink_bps = 100e6);

  // --- Network-Periphery layer ---------------------------------------------------
  /// Wired user behind an AS switch (paper: 100 Mbps per user).
  /// `propagation` overrides the access-link propagation delay — use a large
  /// value to model a WAN-distant host (e.g. an Internet server).
  Host& add_host(const std::string& name, sw::OpenFlowSwitch& as_switch,
                 double access_bps = 100e6, SimTime propagation = 5 * kMicrosecond);
  /// Wireless user associated with an AP (rate governed by the shared radio).
  Host& add_wifi_host(const std::string& name, sw::WifiAccessPoint& ap);
  /// Host attached directly to the legacy fabric — the no-LiveSec baseline
  /// of the latency experiment (§V.B.3).
  Host& add_legacy_host(const std::string& name, sw::EthernetSwitch& legacy,
                        double access_bps = 100e6, SimTime propagation = 5 * kMicrosecond);
  /// VM-based service element on an AS switch; certified automatically.
  /// `config` fields left at defaults are auto-filled (id, MAC, IP, token).
  svc::ServiceElement& add_service_element(svc::ServiceType type, sw::OpenFlowSwitch& as_switch,
                                           svc::ServiceElement::Config config = {});

  /// Disconnects / reconnects a host's access link (join/leave scenarios).
  /// Leaving also stops the host's ARP refreshes so the controller ages it out.
  void detach_host(Host& host);

  /// Live-migrates a service element VM to another AS switch: the old
  /// virtual link is destroyed, a new one wired; the SE's next heartbeat
  /// tells the controller about the new location (paper §III.D.1).
  void migrate_service_element(svc::ServiceElement& se, sw::OpenFlowSwitch& new_switch);

  /// Moves a host (e.g. a wireless user roaming) to another AS switch; the
  /// host announces from the new attachment point.
  void move_host(Host& host, sw::OpenFlowSwitch& new_switch, double access_bps = 100e6);

  // --- lifecycle ---------------------------------------------------------------
  /// Starts everything: SE daemons, host announcements, controller
  /// housekeeping; then runs the simulator for `settle` to let discovery,
  /// registration and ARP learning finish.
  void start(SimTime settle = 200 * kMillisecond);

  /// Advances the simulation by `duration`.
  void run_for(SimTime duration);

  // --- component access -----------------------------------------------------------
  const std::vector<std::unique_ptr<Host>>& hosts() const { return hosts_; }
  const std::vector<std::unique_ptr<svc::ServiceElement>>& service_elements() const {
    return service_elements_;
  }
  const std::vector<std::unique_ptr<sw::OpenFlowSwitch>>& as_switches() const {
    return as_switches_;
  }
  const std::vector<std::unique_ptr<sw::WifiAccessPoint>>& wifi_aps() const { return wifi_aps_; }
  const std::vector<std::unique_ptr<sw::EthernetSwitch>>& legacy_switches() const {
    return legacy_;
  }

  /// Next automatically allocated addresses (tests may pre-compute).
  MacAddress next_mac() const;
  Ipv4Address next_ip() const;

 private:
  MacAddress allocate_mac();
  Ipv4Address allocate_ip();
  void wire(sim::Port& a, sim::Port& b, double bandwidth_bps,
            SimTime propagation = 5 * kMicrosecond);

  sim::Simulator sim_;
  ctrl::Controller::Config controller_config_;
  ctrl::Controller controller_;
  std::vector<std::unique_ptr<ctrl::Controller>> standby_controllers_;
  std::unique_ptr<ha::HaCluster> ha_;

  std::vector<std::unique_ptr<sw::EthernetSwitch>> legacy_;
  std::vector<std::unique_ptr<sw::OpenFlowSwitch>> as_switches_;
  std::vector<std::unique_ptr<sw::WifiAccessPoint>> wifi_aps_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<svc::ServiceElement>> service_elements_;
  std::vector<std::unique_ptr<of::SecureChannel>> channels_;
  std::vector<std::unique_ptr<sim::Link>> links_;

  sw::SpanningTree legacy_graph_;
  bool wire_encoding_ = false;
  DatapathId next_dpid_ = 1;
  std::uint64_t next_se_id_ = 1;
  std::uint64_t next_node_index_ = 1;
  bool started_ = false;
};

}  // namespace livesec::net
