// End hosts of the Network-Periphery layer: wired/wireless users, servers
// and the Internet gateway.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/ip_address.h"
#include "common/mac_address.h"
#include "packet/packet.h"
#include "sim/node.h"

namespace livesec::net {

/// A host with one NIC (port 0): ARP (with cache and pending queue), ICMP
/// echo, and UDP/TCP receive dispatch for the traffic applications.
class Host : public sim::Node {
 public:
  struct PingResult {
    std::uint16_t seq = 0;
    SimTime rtt = 0;
  };

  struct PingStats {
    std::vector<PingResult> results;
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    SimTime min_rtt = 0;
    SimTime max_rtt = 0;
    double avg_rtt() const {
      if (results.empty()) return 0.0;
      double sum = 0;
      for (const auto& r : results) sum += static_cast<double>(r.rtt);
      return sum / static_cast<double>(results.size());
    }
  };

  using PacketHandler = std::function<void(const pkt::Packet&)>;

  Host(sim::Simulator& sim, std::string name, MacAddress mac, Ipv4Address ip);

  MacAddress mac() const { return mac_; }
  Ipv4Address ip() const { return ip_; }

  /// Announces presence via gratuitous ARP (paper §III.C.2: the host's ARP
  /// flow is how the controller learns its location).
  void announce();

  /// Enables periodic gratuitous-ARP refresh (OS-style ARP revalidation) so
  /// the controller's routing-table entry stays fresh while the host is up.
  /// Call disable_periodic_announce() to simulate the host leaving.
  void enable_periodic_announce(SimTime interval);
  void disable_periodic_announce() { ++announce_epoch_; }

  /// Acquires an address via DHCP (DISCOVER -> OFFER -> REQUEST -> ACK
  /// against the controller's directory proxy). `on_bound` fires with the
  /// leased address; retries every `retry` until bound.
  void start_dhcp(std::function<void(Ipv4Address)> on_bound = {},
                  SimTime retry = 500 * kMillisecond);
  bool dhcp_bound() const { return dhcp_bound_; }

  /// Sends an IP packet, resolving the destination MAC via ARP if needed
  /// (packets queue behind resolution). `packet.ipv4->dst` selects the target.
  void send_ip(pkt::Packet packet);

  /// Sends `count` ICMP echo requests to `dst`, one every `interval`;
  /// `on_done` fires after the last reply arrives or `timeout` passes.
  void ping(Ipv4Address dst, int count, SimTime interval,
            std::function<void(const PingStats&)> on_done = {},
            SimTime timeout = 2 * kSecond);

  const PingStats& ping_stats() const { return ping_stats_; }

  /// Registers a handler for UDP/TCP packets arriving on `dst_port`.
  void on_udp(std::uint16_t port, PacketHandler handler);
  void on_tcp(std::uint16_t port, PacketHandler handler);
  /// Fallback handler for any IP packet not claimed by a port handler.
  void on_ip_default(PacketHandler handler) { default_handler_ = std::move(handler); }

  void handle_packet(PortId in_port, pkt::PacketPtr packet) override;

  // Receive accounting (throughput measurements read these).
  std::uint64_t rx_ip_packets() const { return rx_ip_packets_; }
  std::uint64_t rx_ip_bytes() const { return rx_ip_bytes_; }
  std::uint64_t rx_payload_bytes() const { return rx_payload_bytes_; }
  std::uint64_t tx_ip_packets() const { return tx_ip_packets_; }

  /// Clears receive counters (between benchmark phases).
  void reset_counters();

  /// Drops the ARP cache (tests).
  void flush_arp_cache() { arp_cache_.clear(); }
  bool arp_cached(Ipv4Address ip) const { return arp_cache_.contains(ip); }

 private:
  void send_arp_request(Ipv4Address target);
  void flush_pending(Ipv4Address resolved, MacAddress mac);
  void finish_ping();
  void schedule_announce(SimTime interval, std::uint64_t epoch);

  MacAddress mac_;
  Ipv4Address ip_;

  std::unordered_map<Ipv4Address, MacAddress> arp_cache_;
  std::unordered_map<Ipv4Address, std::vector<pkt::Packet>> pending_;

  std::unordered_map<std::uint16_t, PacketHandler> udp_handlers_;
  std::unordered_map<std::uint16_t, PacketHandler> tcp_handlers_;
  PacketHandler default_handler_;

  // Ping state.
  PingStats ping_stats_;
  std::unordered_map<std::uint16_t, SimTime> ping_sent_at_;
  std::uint16_t ping_next_seq_ = 1;
  std::uint16_t ping_id_ = 0;
  int ping_outstanding_ = 0;
  std::function<void(const PingStats&)> ping_done_;
  bool ping_finished_ = false;

  std::uint64_t rx_ip_packets_ = 0;
  std::uint64_t rx_ip_bytes_ = 0;
  std::uint64_t rx_payload_bytes_ = 0;
  std::uint64_t tx_ip_packets_ = 0;
  std::uint64_t announce_epoch_ = 0;

  // DHCP client state.
  bool dhcp_running_ = false;
  bool dhcp_bound_ = false;
  std::uint32_t dhcp_xid_ = 0;
  std::function<void(Ipv4Address)> dhcp_on_bound_;
};

}  // namespace livesec::net
