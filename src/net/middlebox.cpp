#include "net/middlebox.h"

#include "sim/simulator.h"

namespace livesec::net {

InlineMiddlebox::InlineMiddlebox(sim::Simulator& sim, std::string name)
    : InlineMiddlebox(sim, std::move(name), Config{}) {}

InlineMiddlebox::InlineMiddlebox(sim::Simulator& sim, std::string name, Config config)
    : Node(sim, std::move(name)), config_(config) {
  add_port();  // 0: inside
  add_port();  // 1: outside
}

void InlineMiddlebox::handle_packet(PortId in_port, pkt::PacketPtr packet) {
  if (queued_ >= config_.max_queue_packets) {
    ++overload_drops_;
    return;
  }
  ++queued_;
  const double bits = static_cast<double>(packet->wire_size()) * 8.0;
  const SimTime service =
      static_cast<SimTime>(bits / config_.processing_bps * kSecond) + config_.per_packet_overhead;
  const SimTime now = simulator().now();
  const SimTime start = busy_until_ > now ? busy_until_ : now;
  busy_until_ = start + service;
  simulator().schedule_at(busy_until_, [this, in_port, packet = std::move(packet)]() mutable {
    --queued_;
    ++processed_packets_;
    processed_bytes_ += packet->wire_size();
    alerts_ += engine_.inspect(*packet).size();
    send(in_port == 0 ? 1 : 0, std::move(packet));
  });
}

}  // namespace livesec::net
