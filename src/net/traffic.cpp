#include "net/traffic.h"

#include <algorithm>
#include <string_view>

#include "services/l7/l7_classifier.h"
#include "sim/simulator.h"

namespace livesec::net {

// --- UdpCbrApp -----------------------------------------------------------------

UdpCbrApp::UdpCbrApp(Host& host, Config config)
    : host_(&host), config_(config), payload_(pkt::make_payload(config.packet_payload)) {
  const double bits_per_packet =
      static_cast<double>(config_.packet_payload + 28 /*UDP+IP*/ + 14 /*eth*/) * 8.0;
  interval_ = static_cast<SimTime>(bits_per_packet / config_.rate_bps * kSecond);
  if (interval_ <= 0) interval_ = 1;
}

void UdpCbrApp::start() {
  started_at_ = host_->simulator().now();
  send_next();
}

void UdpCbrApp::send_next() {
  const SimTime now = host_->simulator().now();
  if (now - started_at_ >= config_.duration) return;
  pkt::Packet packet = pkt::PacketBuilder()
                           .ipv4(host_->ip(), config_.dst, pkt::IpProto::kUdp)
                           .udp(config_.src_port, config_.dst_port)
                           .payload(payload_)
                           .build();
  ++packets_sent_;
  bytes_sent_ += packet.wire_size();
  host_->send_ip(std::move(packet));
  host_->simulator().schedule(interval_, [this]() { send_next(); });
}

// --- HttpServerApp --------------------------------------------------------------

HttpServerApp::HttpServerApp(Host& host, Config config)
    : host_(&host), config_(config), mtu_payload_(pkt::make_payload(config.mtu_payload)) {
  host_->on_tcp(config_.port, [this](const pkt::Packet& packet) {
    if (!packet.tcp || !packet.ipv4) return;
    const auto key = std::make_pair(packet.ipv4->src.value(), packet.tcp->src_port);

    if (packet.payload_size() == 0) {
      // Bare ack: release the next segment(s) of this session's window.
      auto it = transfers_.find(key);
      if (it == transfers_.end()) return;
      if (it->second.in_flight > 0) --it->second.in_flight;
      fill_window(it->second);
      if (it->second.remaining == 0 && it->second.in_flight == 0) transfers_.erase(it);
      return;
    }

    // A (possibly resumed) GET request. "BYTES=<n>" overrides the size.
    ++requests_served_;
    std::size_t bytes = config_.response_size;
    const std::string request(packet.payload->begin(), packet.payload->end());
    if (const auto pos = request.find("BYTES="); pos != std::string::npos) {
      bytes = static_cast<std::size_t>(std::strtoull(request.c_str() + pos + 6, nullptr, 10));
    }
    Transfer& transfer = transfers_[key];
    transfer.client_ip = packet.ipv4->src;
    transfer.client_port = packet.tcp->src_port;
    transfer.remaining = bytes;
    transfer.in_flight = 0;  // a fresh request restarts the window
    fill_window(transfer);
  });
}

void HttpServerApp::fill_window(Transfer& transfer) {
  while (transfer.in_flight < config_.window && transfer.remaining > 0) {
    const std::size_t chunk = std::min(transfer.remaining, config_.mtu_payload);
    pkt::Packet segment =
        pkt::PacketBuilder()
            .ipv4(host_->ip(), transfer.client_ip, pkt::IpProto::kTcp)
            .tcp(config_.port, transfer.client_port, pkt::TcpFlags::kAck | pkt::TcpFlags::kPsh)
            .build();
    if (!transfer.header_sent) {
      // First segment carries genuine HTTP bytes for the L7 classifier/IDS.
      std::string head = "HTTP/1.1 200 OK\r\nContent-Length: " +
                         std::to_string(transfer.remaining) +
                         "\r\nContent-Type: text/html\r\n\r\n";
      std::vector<std::uint8_t> bytes(head.begin(), head.end());
      bytes.resize(chunk, std::uint8_t{'x'});
      segment.payload = pkt::make_payload(std::move(bytes));
      transfer.header_sent = true;
    } else if (chunk == config_.mtu_payload) {
      segment.payload = mtu_payload_;  // full MTU segment: share, don't allocate
    } else {
      segment.payload = pkt::make_payload(chunk);  // odd-sized tail
    }
    host_->send_ip(std::move(segment));
    transfer.remaining -= chunk;
    ++transfer.in_flight;
  }
}

// --- HttpClientApp --------------------------------------------------------------

HttpClientApp::HttpClientApp(Host& host, Config config)
    : host_(&host), config_(config), next_src_port_(config.first_src_port) {
  // Response segments arrive on our ephemeral ports; credit the transfer,
  // ack each segment (the server's window clock), finish or continue.
  host_->on_ip_default([this](const pkt::Packet& p) {
    if (!p.tcp || p.payload_size() == 0) return;
    auto it = outstanding_.find(p.tcp->dst_port);
    if (it == outstanding_.end()) return;
    response_bytes_ += p.payload_size();
    it->second.last_progress = host_->simulator().now();

    // Ack releases the next window segment at the server.
    pkt::Packet ack = pkt::PacketBuilder()
                          .ipv4(host_->ip(), config_.server, pkt::IpProto::kTcp)
                          .tcp(p.tcp->dst_port, config_.server_port, pkt::TcpFlags::kAck)
                          .build();
    host_->send_ip(std::move(ack));

    if (p.payload_size() >= it->second.remaining) {
      outstanding_.erase(it);
      ++responses_completed_;
      if (issued_ < config_.sessions) issue_request();
    } else {
      it->second.remaining -= p.payload_size();
    }
  });
}

void HttpClientApp::start() {
  const std::size_t burst = std::min(config_.concurrency, config_.sessions);
  for (std::size_t i = 0; i < burst; ++i) issue_request();
  if (!watchdog_running_) {
    watchdog_running_ = true;
    host_->simulator().schedule(100 * kMillisecond, [this]() { watchdog(); });
  }
}

void HttpClientApp::issue_request() {
  if (issued_ >= config_.sessions) return;
  ++issued_;
  const std::uint16_t src_port = next_src_port_++;
  outstanding_[src_port] =
      Outstanding{config_.expected_response, host_->simulator().now()};
  send_request(src_port, config_.expected_response);
}

void HttpClientApp::send_request(std::uint16_t src_port, std::size_t bytes) {
  const std::string request = "GET " + config_.path + " HTTP/1.1\r\nHost: server\r\nBYTES=" +
                              std::to_string(bytes) + "\r\n\r\n";
  pkt::Packet packet =
      pkt::PacketBuilder()
          .ipv4(host_->ip(), config_.server, pkt::IpProto::kTcp)
          .tcp(src_port, config_.server_port, pkt::TcpFlags::kPsh | pkt::TcpFlags::kAck)
          .payload(request)
          .build();
  host_->send_ip(std::move(packet));
}

void HttpClientApp::watchdog() {
  // Stall recovery (TCP retransmission stand-in): a transfer idle for 300 ms
  // re-requests its remaining bytes.
  const SimTime now = host_->simulator().now();
  for (auto& [src_port, transfer] : outstanding_) {
    if (now - transfer.last_progress > 300 * kMillisecond) {
      transfer.last_progress = now;
      ++resumes_sent_;
      send_request(src_port, transfer.remaining);
    }
  }
  if (!outstanding_.empty() || issued_ < config_.sessions) {
    host_->simulator().schedule(100 * kMillisecond, [this]() { watchdog(); });
  } else {
    watchdog_running_ = false;
  }
}

// --- SshApp ----------------------------------------------------------------------

SshApp::SshApp(Host& host, Config config)
    : host_(&host), config_(config), keystroke_payload_(pkt::make_payload(std::size_t{48})) {}

void SshApp::start() {
  started_at_ = host_->simulator().now();
  tick();
}

void SshApp::tick() {
  const SimTime now = host_->simulator().now();
  if (now - started_at_ >= config_.duration) return;
  pkt::PacketBuilder builder;
  builder.ipv4(host_->ip(), config_.server, pkt::IpProto::kTcp)
      .tcp(config_.src_port, 22, pkt::TcpFlags::kPsh | pkt::TcpFlags::kAck);
  if (!banner_sent_) {
    builder.payload("SSH-2.0-OpenSSH_5.8p1 LiveSec\r\n");
    banner_sent_ = true;
  } else {
    builder.payload(keystroke_payload_);  // encrypted keystroke-sized record
  }
  ++packets_sent_;
  host_->send_ip(builder.build());
  host_->simulator().schedule(config_.keystroke_interval, [this]() { tick(); });
}

// --- BitTorrentApp ----------------------------------------------------------------

BitTorrentApp::BitTorrentApp(Host& host, Config config)
    : host_(&host), config_(config), piece_payload_(pkt::make_payload(std::size_t{1400})) {
  const double bits_per_packet = (1400 + 54) * 8.0;
  interval_ = static_cast<SimTime>(bits_per_packet / config_.rate_bps * kSecond);
  if (interval_ <= 0) interval_ = 1;
}

void BitTorrentApp::start() {
  started_at_ = host_->simulator().now();
  if (!handshakes_sent_) {
    handshakes_sent_ = true;
    // 20-byte stand-ins; real clients put a SHA-1 and a client fingerprint here.
    constexpr std::string_view kDemoInfoHash = "INFOHASHINFOHASHXXXX";
    constexpr std::string_view kDemoPeerId = "PEERIDPEERIDPEERIDPE";
    const std::string handshake = svc::l7::make_bittorrent_handshake(kDemoInfoHash, kDemoPeerId);
    for (std::size_t i = 0; i < config_.peers.size(); ++i) {
      pkt::Packet packet =
          pkt::PacketBuilder()
              .ipv4(host_->ip(), config_.peers[i], pkt::IpProto::kTcp)
              .tcp(static_cast<std::uint16_t>(config_.first_src_port + i), 6881,
                   pkt::TcpFlags::kPsh | pkt::TcpFlags::kAck)
              .payload(handshake)
              .build();
      host_->send_ip(std::move(packet));
    }
  }
  send_next();
}

void BitTorrentApp::send_next() {
  const SimTime now = host_->simulator().now();
  if (now - started_at_ >= config_.duration || config_.peers.empty()) return;
  const std::size_t peer = next_peer_++ % config_.peers.size();
  pkt::Packet packet =
      pkt::PacketBuilder()
          .ipv4(host_->ip(), config_.peers[peer], pkt::IpProto::kTcp)
          .tcp(static_cast<std::uint16_t>(config_.first_src_port + peer), 6881,
               pkt::TcpFlags::kAck)
          .payload(piece_payload_)
          .build();
  bytes_sent_ += packet.wire_size();
  host_->send_ip(std::move(packet));
  host_->simulator().schedule(interval_, [this]() { send_next(); });
}

// --- AttackApp --------------------------------------------------------------------

AttackApp::AttackApp(Host& host, Config config)
    : host_(&host),
      config_(config),
      attack_payload_(pkt::make_payload(std::string_view(config_.attack_payload))),
      remaining_(config.packets) {}

void AttackApp::start() { send_next(); }

void AttackApp::send_next() {
  if (remaining_ <= 0) return;
  --remaining_;
  pkt::Packet packet =
      pkt::PacketBuilder()
          .ipv4(host_->ip(), config_.server, pkt::IpProto::kTcp)
          .tcp(config_.src_port, config_.server_port, pkt::TcpFlags::kPsh | pkt::TcpFlags::kAck)
          .payload(attack_payload_)
          .build();
  ++packets_sent_;
  host_->send_ip(std::move(packet));
  host_->simulator().schedule(config_.interval, [this]() { send_next(); });
}

}  // namespace livesec::net
