#include "net/host.h"

#include "common/hash.h"
#include "packet/dhcp.h"
#include "sim/simulator.h"

namespace livesec::net {

Host::Host(sim::Simulator& sim, std::string name, MacAddress mac, Ipv4Address ip)
    : Node(sim, std::move(name)), mac_(mac), ip_(ip) {
  add_port();  // port 0: the NIC
  ping_id_ = static_cast<std::uint16_t>(mac.to_uint64() & 0xFFFF);
}

void Host::announce() {
  auto garp = pkt::PacketBuilder()
                  .eth(mac_, MacAddress::broadcast())
                  .arp(pkt::ArpOp::kRequest, mac_, ip_, MacAddress(), ip_)
                  .finalize();
  send(0, std::move(garp));
}

void Host::enable_periodic_announce(SimTime interval) {
  const std::uint64_t epoch = ++announce_epoch_;
  schedule_announce(interval, epoch);
}

void Host::schedule_announce(SimTime interval, std::uint64_t epoch) {
  if (epoch != announce_epoch_) return;  // disabled or re-armed since
  announce();
  simulator().schedule(interval,
                       [this, interval, epoch]() { schedule_announce(interval, epoch); });
}

void Host::start_dhcp(std::function<void(Ipv4Address)> on_bound, SimTime retry) {
  dhcp_on_bound_ = std::move(on_bound);
  dhcp_running_ = true;
  dhcp_bound_ = false;
  dhcp_xid_ = static_cast<std::uint32_t>(splitmix64(mac_.to_uint64()));

  pkt::DhcpMessage discover;
  discover.op = pkt::DhcpOp::kDiscover;
  discover.xid = dhcp_xid_;
  discover.client_mac = mac_;
  send(0, pkt::finalize(discover.to_packet(mac_, Ipv4Address())));

  simulator().schedule(retry, [this, retry]() {
    if (dhcp_running_ && !dhcp_bound_) start_dhcp(std::move(dhcp_on_bound_), retry);
  });
}

void Host::send_arp_request(Ipv4Address target) {
  auto request = pkt::PacketBuilder()
                     .eth(mac_, MacAddress::broadcast())
                     .arp(pkt::ArpOp::kRequest, mac_, ip_, MacAddress(), target)
                     .finalize();
  send(0, std::move(request));
}

void Host::send_ip(pkt::Packet packet) {
  packet.eth.src = mac_;
  if (!packet.ipv4) return;
  packet.ipv4->src = ip_;
  const Ipv4Address dst = packet.ipv4->dst;
  auto it = arp_cache_.find(dst);
  if (it == arp_cache_.end()) {
    const bool already_resolving = pending_.contains(dst);
    pending_[dst].push_back(std::move(packet));
    if (!already_resolving) send_arp_request(dst);
    return;
  }
  packet.eth.dst = it->second;
  ++tx_ip_packets_;
  send(0, pkt::finalize(std::move(packet)));
}

void Host::flush_pending(Ipv4Address resolved, MacAddress mac) {
  auto it = pending_.find(resolved);
  if (it == pending_.end()) return;
  std::vector<pkt::Packet> queued = std::move(it->second);
  pending_.erase(it);
  for (pkt::Packet& packet : queued) {
    packet.eth.dst = mac;
    ++tx_ip_packets_;
    send(0, pkt::finalize(std::move(packet)));
  }
}

void Host::ping(Ipv4Address dst, int count, SimTime interval,
                std::function<void(const PingStats&)> on_done, SimTime timeout) {
  ping_done_ = std::move(on_done);
  ping_outstanding_ = count;
  ping_finished_ = false;
  for (int i = 0; i < count; ++i) {
    simulator().schedule(interval * i, [this, dst]() {
      const std::uint16_t seq = ping_next_seq_++;
      ping_sent_at_[seq] = simulator().now();
      ++ping_stats_.sent;
      pkt::Packet packet = pkt::PacketBuilder()
                               .ipv4(ip_, dst, pkt::IpProto::kIcmp)
                               .icmp(pkt::IcmpType::kEchoRequest, ping_id_, seq)
                               .payload_size(56)
                               .build();
      send_ip(std::move(packet));
    });
  }
  // Completion deadline: fire on_done even if replies were lost.
  simulator().schedule(interval * count + timeout, [this]() { finish_ping(); });
}

void Host::finish_ping() {
  if (ping_finished_) return;
  ping_finished_ = true;
  if (ping_done_) ping_done_(ping_stats_);
}

void Host::on_udp(std::uint16_t port, PacketHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Host::on_tcp(std::uint16_t port, PacketHandler handler) {
  tcp_handlers_[port] = std::move(handler);
}

void Host::reset_counters() {
  rx_ip_packets_ = 0;
  rx_ip_bytes_ = 0;
  rx_payload_bytes_ = 0;
  tx_ip_packets_ = 0;
}

void Host::handle_packet(PortId in_port, pkt::PacketPtr packet) {
  (void)in_port;
  const pkt::Packet& p = *packet;

  if (p.arp) {
    const pkt::ArpHeader& arp = *p.arp;
    if (arp.op == pkt::ArpOp::kRequest) {
      if (arp.target_ip == ip_ && arp.sender_ip != ip_) {
        arp_cache_[arp.sender_ip] = arp.sender_mac;
        auto reply = pkt::PacketBuilder()
                         .eth(mac_, arp.sender_mac)
                         .arp(pkt::ArpOp::kReply, mac_, ip_, arp.sender_mac, arp.sender_ip)
                         .finalize();
        send(0, std::move(reply));
      }
    } else {
      arp_cache_[arp.sender_ip] = arp.sender_mac;
      flush_pending(arp.sender_ip, arp.sender_mac);
    }
    return;
  }

  if (!p.ipv4 || p.eth.dst != mac_) return;

  // DHCP client: OFFER -> REQUEST, ACK -> bind.
  if (dhcp_running_ && !dhcp_bound_ && p.udp && p.udp->dst_port == pkt::kDhcpClientPort) {
    const auto message = pkt::DhcpMessage::decode(p.payload_view());
    if (message && message->xid == dhcp_xid_ && message->client_mac == mac_) {
      if (message->op == pkt::DhcpOp::kOffer) {
        pkt::DhcpMessage request;
        request.op = pkt::DhcpOp::kRequest;
        request.xid = dhcp_xid_;
        request.client_mac = mac_;
        request.your_ip = message->your_ip;
        send(0, pkt::finalize(request.to_packet(mac_, Ipv4Address())));
      } else if (message->op == pkt::DhcpOp::kAck) {
        ip_ = message->your_ip;
        dhcp_bound_ = true;
        announce();
        if (dhcp_on_bound_) dhcp_on_bound_(ip_);
      }
      return;
    }
  }
  ++rx_ip_packets_;
  rx_ip_bytes_ += p.wire_size();
  rx_payload_bytes_ += p.payload_size();
  // Data-plane traffic also teaches us the peer's MAC (saves an ARP for the
  // reply direction).
  arp_cache_.emplace(p.ipv4->src, p.eth.src);

  if (p.icmp) {
    if (p.icmp->type == pkt::IcmpType::kEchoRequest) {
      pkt::Packet reply = pkt::PacketBuilder()
                              .ipv4(ip_, p.ipv4->src, pkt::IpProto::kIcmp)
                              .icmp(pkt::IcmpType::kEchoReply, p.icmp->id, p.icmp->seq)
                              .payload(p.payload ? p.payload : pkt::make_payload(std::size_t{56}))
                              .build();
      send_ip(std::move(reply));
    } else if (p.icmp->type == pkt::IcmpType::kEchoReply && p.icmp->id == ping_id_) {
      auto it = ping_sent_at_.find(p.icmp->seq);
      if (it != ping_sent_at_.end()) {
        const SimTime rtt = simulator().now() - it->second;
        ping_sent_at_.erase(it);
        ping_stats_.results.push_back(PingResult{p.icmp->seq, rtt});
        ++ping_stats_.received;
        if (ping_stats_.min_rtt == 0 || rtt < ping_stats_.min_rtt) ping_stats_.min_rtt = rtt;
        if (rtt > ping_stats_.max_rtt) ping_stats_.max_rtt = rtt;
        if (--ping_outstanding_ <= 0) finish_ping();
      }
    }
    return;
  }

  if (p.udp) {
    auto it = udp_handlers_.find(p.udp->dst_port);
    if (it != udp_handlers_.end()) {
      it->second(p);
      return;
    }
  } else if (p.tcp) {
    auto it = tcp_handlers_.find(p.tcp->dst_port);
    if (it != tcp_handlers_.end()) {
      it->second(p);
      return;
    }
  }
  if (default_handler_) default_handler_(p);
}

}  // namespace livesec::net
