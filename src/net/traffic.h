// Traffic applications: synthetic workloads reproducing the traffic mixes of
// paper §V (UDP access tests, HTTP through the IDS, SSH/BitTorrent for the
// visualization scenario, malicious flows for interactive enforcement).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/random.h"
#include "net/host.h"

namespace livesec::net {

/// Constant-bit-rate UDP sender (the paper's access-throughput workload).
class UdpCbrApp {
 public:
  struct Config {
    Ipv4Address dst;
    std::uint16_t dst_port = 9000;
    std::uint16_t src_port = 40000;
    double rate_bps = 100e6;
    std::size_t packet_payload = 1400;
    SimTime duration = 1 * kSecond;
  };

  UdpCbrApp(Host& host, Config config);

  void start();
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void send_next();

  Host* host_;
  Config config_;
  pkt::PayloadPtr payload_;  // built once, shared by every packet of the flow
  SimTime started_at_ = 0;
  SimTime interval_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

/// HTTP/1.1-style server with a TCP-like ack-clocked transport: each request
/// opens a windowed transfer (at most `window` MTU segments in flight per
/// session); every client ack releases the next segment, so the send rate
/// self-clocks to the bottleneck (link or service element) instead of
/// blasting at line rate and overflowing queues. The first segment carries a
/// real "HTTP/1.1 200 OK" preamble so the L7 classifier and the IDS see
/// genuine protocol bytes. A request payload may override the transfer size
/// with "BYTES=<n>" (used by the client's stall-resume).
class HttpServerApp {
 public:
  struct Config {
    std::uint16_t port = 80;
    std::size_t response_size = 64 * 1024;
    std::size_t mtu_payload = 1400;
    /// Max segments in flight per session (TCP congestion-window stand-in).
    std::size_t window = 16;
  };

  HttpServerApp(Host& host, Config config);

  std::uint64_t requests_served() const { return requests_served_; }
  std::size_t active_transfers() const { return transfers_.size(); }

 private:
  struct Transfer {
    Ipv4Address client_ip;
    std::uint16_t client_port = 0;
    std::size_t remaining = 0;
    std::size_t in_flight = 0;
    bool header_sent = false;
  };

  void fill_window(Transfer& transfer);

  Host* host_;
  Config config_;
  pkt::PayloadPtr mtu_payload_;  // full-MTU body segment, shared across sessions
  std::uint64_t requests_served_ = 0;
  std::map<std::pair<std::uint32_t, std::uint16_t>, Transfer> transfers_;
};

/// HTTP client: opens `sessions` GET requests, `concurrency` at a time; each
/// uses a distinct ephemeral source port (=> a distinct flow for flow-grain
/// load balancing). A new request is issued when the previous response has
/// been (approximately) fully received.
class HttpClientApp {
 public:
  struct Config {
    Ipv4Address server;
    std::uint16_t server_port = 80;
    std::uint16_t first_src_port = 20000;
    std::size_t sessions = 10;
    std::size_t concurrency = 4;
    std::size_t expected_response = 64 * 1024;
    std::string path = "/index.html";
  };

  HttpClientApp(Host& host, Config config);

  void start();
  std::uint64_t responses_completed() const { return responses_completed_; }
  std::uint64_t response_bytes() const { return response_bytes_; }
  bool done() const { return responses_completed_ >= config_.sessions; }

 private:
  void issue_request();
  void send_request(std::uint16_t src_port, std::size_t bytes);
  void watchdog();

  Host* host_;
  Config config_;
  std::uint16_t next_src_port_;
  std::size_t issued_ = 0;
  std::uint64_t responses_completed_ = 0;
  std::uint64_t response_bytes_ = 0;
  std::uint64_t resumes_sent_ = 0;
  bool watchdog_running_ = false;

  struct Outstanding {
    std::size_t remaining = 0;
    SimTime last_progress = 0;
  };
  std::unordered_map<std::uint16_t, Outstanding> outstanding_;  // by src port
};

/// Periodic SSH-like session traffic (small encrypted-looking payloads after
/// a real "SSH-2.0-..." banner) — the visualization scenario's SSH user.
class SshApp {
 public:
  struct Config {
    Ipv4Address server;
    std::uint16_t src_port = 30022;
    SimTime keystroke_interval = 200 * kMillisecond;
    SimTime duration = 10 * kSecond;
  };

  SshApp(Host& host, Config config);
  void start();
  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void tick();

  Host* host_;
  Config config_;
  pkt::PayloadPtr keystroke_payload_;
  SimTime started_at_ = 0;
  bool banner_sent_ = false;
  std::uint64_t packets_sent_ = 0;
};

/// BitTorrent-like bulk transfer: a real BT handshake then sustained
/// MTU-sized piece traffic to several peers — the "user started downloading
/// by BitTorrent, link utilization jumped" event of Figure 8.
class BitTorrentApp {
 public:
  struct Config {
    std::vector<Ipv4Address> peers;
    std::uint16_t first_src_port = 36881;
    double rate_bps = 40e6;
    SimTime duration = 5 * kSecond;
  };

  BitTorrentApp(Host& host, Config config);
  void start();
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void send_next();

  Host* host_;
  Config config_;
  pkt::PayloadPtr piece_payload_;  // MTU-sized piece, shared across peers
  SimTime started_at_ = 0;
  SimTime interval_ = 0;
  std::size_t next_peer_ = 0;
  bool handshakes_sent_ = false;
  std::uint64_t bytes_sent_ = 0;
};

/// Malicious client: issues an HTTP request whose URL/content matches an IDS
/// rule (default: the "malicious website" marker of Figure 8), so an IDS SE
/// raises an attack event and the controller blocks the flow.
class AttackApp {
 public:
  struct Config {
    Ipv4Address server;
    std::uint16_t server_port = 80;
    std::uint16_t src_port = 28080;
    /// Payload embedded in the request; defaults to IDS rule 1014.
    std::string attack_payload = "GET /exploit HTTP/1.1\r\nHost: malware-distribution.example\r\n\r\n";
    /// Packets to send (the flow keeps transmitting so the post-block drop
    /// is observable).
    int packets = 20;
    SimTime interval = 50 * kMillisecond;
  };

  AttackApp(Host& host, Config config);
  void start();
  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void send_next();

  Host* host_;
  Config config_;
  pkt::PayloadPtr attack_payload_;
  int remaining_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace livesec::net
