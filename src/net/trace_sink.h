// A capture host hanging off a mirror (SPAN) port: records every frame it
// receives into a Trace for later offline replay.
#pragma once

#include "monitor/trace.h"
#include "sim/node.h"

namespace livesec::net {

/// Plug this node's port 0 into an AS switch port configured as the mirror
/// target (Controller::set_mirror_port); every mirrored frame lands in the
/// trace with its arrival timestamp.
class TraceSink : public sim::Node {
 public:
  TraceSink(sim::Simulator& sim, std::string name) : Node(sim, std::move(name)) { add_port(); }

  void handle_packet(PortId, pkt::PacketPtr packet) override {
    trace_.append(simulator().now(), std::move(packet));
  }

  const mon::Trace& trace() const { return trace_; }
  mon::Trace& trace() { return trace_; }

 private:
  mon::Trace trace_;
};

}  // namespace livesec::net
