// 48-bit Ethernet MAC address value type.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace livesec {

/// An immutable 48-bit IEEE 802 MAC address.
///
/// MAC addresses identify hosts and service elements in the
/// Network-Periphery layer and are the key of the controller's routing
/// table (paper §III.C.2).
class MacAddress {
 public:
  /// All-zero address (invalid as a host address).
  constexpr MacAddress() = default;

  constexpr explicit MacAddress(std::array<std::uint8_t, 6> bytes) : bytes_(bytes) {}

  /// Builds an address from the low 48 bits of `value` (big-endian order).
  static constexpr MacAddress from_uint64(std::uint64_t value) {
    std::array<std::uint8_t, 6> b{};
    for (int i = 5; i >= 0; --i) {
      b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value & 0xFF);
      value >>= 8;
    }
    return MacAddress(b);
  }

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive). Returns nullopt on
  /// malformed input.
  static std::optional<MacAddress> parse(std::string_view text);

  /// The broadcast address ff:ff:ff:ff:ff:ff.
  static constexpr MacAddress broadcast() { return from_uint64(0xFFFFFFFFFFFFull); }

  constexpr std::uint64_t to_uint64() const {
    std::uint64_t v = 0;
    for (std::uint8_t b : bytes_) v = (v << 8) | b;
    return v;
  }

  constexpr const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }

  constexpr bool is_broadcast() const { return to_uint64() == 0xFFFFFFFFFFFFull; }
  constexpr bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }
  constexpr bool is_zero() const { return to_uint64() == 0; }

  std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

}  // namespace livesec

template <>
struct std::hash<livesec::MacAddress> {
  std::size_t operator()(const livesec::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_uint64());
  }
};
