#include "common/types.h"

#include <cstdio>

namespace livesec {

std::string format_time(SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds(t));
  return buf;
}

std::string format_rate_bps(double bits_per_second) {
  char buf[48];
  if (bits_per_second >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f Gbps", bits_per_second / 1e9);
  } else if (bits_per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mbps", bits_per_second / 1e6);
  } else if (bits_per_second >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f Kbps", bits_per_second / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f bps", bits_per_second);
  }
  return buf;
}

}  // namespace livesec
