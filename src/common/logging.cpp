#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace livesec {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

const char* Logger::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  if (Logger::level() > level) return;
  std::fprintf(stderr, "[%s] [%.*s] %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace livesec
