// Minimal leveled logger.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace livesec {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration. Tests set `kOff` or `kWarn` to keep output
/// clean; examples set `kInfo` to narrate what the controller does.
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Emits one log line "[lvl] [component] message" to stderr if `level` is
  /// enabled.
  static void log(LogLevel level, std::string_view component, std::string_view message);

  static const char* level_name(LogLevel level);
};

/// Convenience: streams into a single log call.
/// Usage: LOGI("controller") << "host " << mac << " joined";
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  ~LogLine() {
    if (Logger::level() <= level_) Logger::log(level_, component_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (Logger::level() <= level_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

inline LogLine log_trace(std::string_view c) { return LogLine(LogLevel::kTrace, c); }
inline LogLine log_debug(std::string_view c) { return LogLine(LogLevel::kDebug, c); }
inline LogLine log_info(std::string_view c) { return LogLine(LogLevel::kInfo, c); }
inline LogLine log_warn(std::string_view c) { return LogLine(LogLevel::kWarn, c); }
inline LogLine log_error(std::string_view c) { return LogLine(LogLevel::kError, c); }

}  // namespace livesec
