// Tiny append-style integer formatters for hot-path string rendering.
//
// snprintf routes through the locale-aware vfprintf machinery (~200ns per
// call); flow events render several addresses and ports apiece on the flow
// setup path, where that adds up to microseconds. These helpers write
// directly into a caller-provided buffer and return the number of
// characters produced.
#pragma once

#include <cstdint>

namespace livesec {

/// Writes `v` as two lowercase hex digits.
inline int format_hex_byte(char* out, std::uint8_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  out[0] = kHex[v >> 4];
  out[1] = kHex[v & 0xF];
  return 2;
}

/// Writes `v` in decimal (no sign, no padding).
inline int format_u32_dec(char* out, std::uint32_t v) {
  char tmp[10];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (int i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

}  // namespace livesec
