#include "common/ip_address.h"

#include "common/format_util.h"

namespace livesec {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t parts[4] = {0, 0, 0, 0};
  int part = 0;
  bool any_digit = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      parts[part] = parts[part] * 10 + static_cast<std::uint32_t>(c - '0');
      if (parts[part] > 255) return std::nullopt;
      any_digit = true;
    } else if (c == '.') {
      if (!any_digit || part == 3) return std::nullopt;
      ++part;
      any_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (part != 3 || !any_digit) return std::nullopt;
  return Ipv4Address(static_cast<std::uint8_t>(parts[0]), static_cast<std::uint8_t>(parts[1]),
                     static_cast<std::uint8_t>(parts[2]), static_cast<std::uint8_t>(parts[3]));
}

std::string Ipv4Address::to_string() const {
  char buf[15];
  int len = 0;
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) buf[len++] = '.';
    len += format_u32_dec(buf + len, (value_ >> shift) & 0xFF);
  }
  return std::string(buf, static_cast<std::size_t>(len));
}

}  // namespace livesec
