// IPv4 address value type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace livesec {

/// An immutable IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : value_(host_order) {}

  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
               std::uint32_t{d}) {}

  /// Parses dotted-quad "10.0.1.2". Returns nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text);

  static constexpr Ipv4Address broadcast() { return Ipv4Address(0xFFFFFFFFu); }

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_zero() const { return value_ == 0; }
  constexpr bool is_broadcast() const { return value_ == 0xFFFFFFFFu; }

  /// True when `other` is in the same /prefix_len subnet as this address.
  constexpr bool same_subnet(Ipv4Address other, int prefix_len) const {
    if (prefix_len <= 0) return true;
    const std::uint32_t mask = prefix_len >= 32 ? 0xFFFFFFFFu : ~((1u << (32 - prefix_len)) - 1);
    return (value_ & mask) == (other.value_ & mask);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace livesec

template <>
struct std::hash<livesec::Ipv4Address> {
  std::size_t operator()(const livesec::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
