// Fundamental scalar types shared across all LiveSec modules.
#pragma once

#include <cstdint>
#include <string>

namespace livesec {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Converts a simulated duration to (floating) seconds.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / kSecond; }

/// Converts (floating) seconds into a simulated duration.
constexpr SimTime from_seconds(double s) { return static_cast<SimTime>(s * kSecond); }

/// Datapath identifier of an OpenFlow switch (paper: AS switch / AS router).
using DatapathId = std::uint64_t;

/// Port number local to one switch or host.
using PortId = std::uint32_t;

/// Port number reserved for "no port" / unset.
inline constexpr PortId kInvalidPort = 0xFFFFFFFFu;

/// Formats a simulated time as "12.345678s" for logs and event records.
std::string format_time(SimTime t);

/// Formats a bit rate as human-readable "X.Y Mbps" / "X.Y Gbps".
std::string format_rate_bps(double bits_per_second);

}  // namespace livesec
