// Deterministic random number generation for workloads and simulations.
#pragma once

#include <cstdint>
#include <random>

namespace livesec {

/// A seeded RNG wrapper. All stochastic behaviour in LiveSec (traffic
/// generators, workload skew, jitter) draws from an explicitly seeded `Rng`
/// so that every test and benchmark run is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Bernoulli trial with probability `p`.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (>0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Zipf-like skewed index in [0, n): rank r chosen with weight 1/(r+1)^s.
  std::size_t zipf(std::size_t n, double s);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace livesec
