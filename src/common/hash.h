// Hashing helpers: FNV-1a and hash combination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace livesec {

/// 64-bit FNV-1a over raw bytes. Deterministic across platforms — used for
/// flow hashing in the hash load-balancing strategy and for the service
/// element certification tokens.
constexpr std::uint64_t fnv1a(std::span<const std::uint8_t> data,
                              std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::uint64_t fnv1a(std::string_view text, std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Mixes `value` into an accumulated hash (boost::hash_combine style, 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t value) {
  return h ^ (value + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4));
}

/// SplitMix64 — cheap stateless mixing used to decorrelate ids.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace livesec
