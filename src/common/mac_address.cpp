#include "common/mac_address.h"

#include <cctype>

#include "common/format_util.h"

namespace livesec {

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  std::array<std::uint8_t, 6> bytes{};
  std::size_t pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (pos + 2 > text.size()) return std::nullopt;
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
      return -1;
    };
    const int hi = hex(text[pos]);
    const int lo = hex(text[pos + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    bytes[i] = static_cast<std::uint8_t>(hi * 16 + lo);
    pos += 2;
    if (i < 5) {
      if (pos >= text.size() || text[pos] != ':') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return MacAddress(bytes);
}

std::string MacAddress::to_string() const {
  char buf[17];
  int len = 0;
  for (int i = 0; i < 6; ++i) {
    if (i != 0) buf[len++] = ':';
    len += format_hex_byte(buf + len, bytes_[static_cast<std::size_t>(i)]);
  }
  return std::string(buf, static_cast<std::size_t>(len));
}

}  // namespace livesec
