// A vector with inline storage for its first N elements.
//
// OpenFlow action lists are almost always one to three entries (set-field +
// output), yet they ride inside every FlowMod, FlowEntry and PacketOut the
// control plane copies around. Giving them inline capacity makes those
// copies allocation-free on the flow-setup fast path; lists that outgrow N
// spill to the heap and behave like a plain vector from then on.
//
// Only the slice of the std::vector interface the codebase uses is
// implemented; iterators are raw pointers and are invalidated by any growth,
// exactly as with std::vector.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <new>
#include <utility>

namespace livesec {

template <typename T, std::size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (const T& v : other) push_back(v);
  }

  SmallVector(SmallVector&& other) noexcept { steal(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const T& v : other) push_back(v);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(std::move(other));
    }
    return *this;
  }

  SmallVector& operator=(std::initializer_list<T> init) {
    clear();
    reserve(init.size());
    for (const T& v : init) push_back(v);
    return *this;
  }

  ~SmallVector() { destroy(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T* cbegin() const { return data_; }
  const T* cend() const { return data_ + size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(std::size_t wanted) {
    if (wanted > capacity_) grow(wanted);
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  void pop_back() { data_[--size_].~T(); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* slot = ::new (static_cast<void*>(data_ + size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Inserts before `pos`, shifting the tail up one slot.
  iterator insert(iterator pos, const T& v) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    emplace_back(v);  // may reallocate; also handles the append case
    std::rotate(data_ + at, data_ + size_ - 1, data_ + size_);
    return data_ + at;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  T* inline_slots() { return reinterpret_cast<T*>(inline_storage_); }

  void grow(std::size_t wanted) {
    const std::size_t new_capacity = std::max(wanted, capacity_ * 2);
    T* heap = static_cast<T*>(::operator new(new_capacity * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(heap + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (data_ != inline_slots()) ::operator delete(data_);
    data_ = heap;
    capacity_ = new_capacity;
  }

  /// Takes other's contents; assumes our storage is already destroyed/fresh.
  void steal(SmallVector&& other) noexcept {
    if (other.data_ != other.inline_slots()) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_slots();
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      data_ = inline_slots();
      capacity_ = N;
      size_ = other.size_;
      for (std::size_t i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      other.size_ = 0;
    }
  }

  void destroy() {
    clear();
    if (data_ != inline_slots()) ::operator delete(data_);
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_slots();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace livesec
