// Open-addressing hash map for trivially small key/value pairs.
//
// The controller's host-scale tables (routing shards, IP index, per-dpid
// chain heads) are hot at campus scale: a million hosts means a million
// entries probed on every packet-in. std::unordered_map pays one heap node
// plus pointer chase per entry; this map stores entries inline in one flat
// slot array (robin-hood probing, backward-shift deletion, no tombstones),
// so lookups touch one or two cache lines and memory stays a flat
// slots * sizeof(Slot) with a bounded load factor.
//
// Only the slice of the map interface the codebase needs is implemented.
// Keys and values should be cheap to move (the intended use is integral
// keys mapping to handles). Pointers returned by find() are invalidated by
// any mutation, exactly as iterators of std::unordered_map are by rehash.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace livesec {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slot-array length (0 or a power of two).
  std::size_t capacity() const { return slots_.size(); }

  void clear() {
    std::fill(dist_.begin(), dist_.end(), 0u);
    size_ = 0;
  }

  /// Pre-sizes the table for `n` entries without rehashing on the way there.
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want * 7 < n * 8) want *= 2;  // keep load factor under 7/8
    if (want > slots_.size()) rehash(want);
  }

  Value* find(const Key& key) {
    return const_cast<Value*>(static_cast<const FlatHashMap*>(this)->find(key));
  }

  const Value* find(const Key& key) const {
    if (size_ == 0) return nullptr;
    std::size_t idx = home_of(key);
    std::uint32_t dist = 1;
    // Robin-hood invariant: an entry never sits further from home than the
    // probing key has travelled, so the scan stops at the first poorer slot.
    while (dist_[idx] >= dist) {
      if (slots_[idx].first == key) return &slots_[idx].second;
      idx = (idx + 1) & mask_;
      ++dist;
    }
    return nullptr;
  }

  /// Inserts or overwrites. Returns true when the key was newly inserted.
  bool insert_or_assign(const Key& key, Value value) {
    bool inserted = false;
    *slot_for(key, &inserted) = std::move(value);
    return inserted;
  }

  /// Value for `key`, default-constructed and inserted when absent.
  Value& operator[](const Key& key) {
    bool inserted = false;
    Value* v = slot_for(key, &inserted);
    if (inserted) *v = Value{};
    return *v;
  }

  /// Removes `key`; returns true when it was present. Backward-shift
  /// deletion keeps probe chains dense (no tombstone accumulation).
  bool erase(const Key& key) {
    if (size_ == 0) return false;
    std::size_t idx = home_of(key);
    std::uint32_t dist = 1;
    while (dist_[idx] >= dist) {
      if (slots_[idx].first == key) {
        std::size_t next = (idx + 1) & mask_;
        while (dist_[next] > 1) {
          slots_[idx] = std::move(slots_[next]);
          dist_[idx] = dist_[next] - 1;
          idx = next;
          next = (next + 1) & mask_;
        }
        dist_[idx] = 0;
        --size_;
        return true;
      }
      idx = (idx + 1) & mask_;
      ++dist;
    }
    return false;
  }

  /// Visits every (key, value) pair in unspecified order.
  template <typename F>
  void for_each(F&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (dist_[i] != 0) fn(slots_[i].first, slots_[i].second);
    }
  }

  /// Footprint of the slot storage (the O(capacity) term of the table).
  std::size_t memory_bytes() const {
    return slots_.capacity() * sizeof(std::pair<Key, Value>) +
           dist_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::size_t home_of(const Key& key) const {
    // splitmix64 decorrelates identity-ish hashes (MACs, dpids, IPs are
    // near-sequential in generated topologies) before masking.
    return static_cast<std::size_t>(splitmix64(static_cast<std::uint64_t>(Hash{}(key)))) & mask_;
  }

  /// Finds or creates the slot for `key`; grows as needed. Probe distances
  /// are bounded by table size (uint32 cannot overflow before OOM), so a
  /// placement never fails mid-carry.
  Value* slot_for(const Key& key, bool* inserted) {
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    std::size_t idx = home_of(key);
    std::uint32_t dist = 1;
    Key carry_key = key;
    Value carry_value{};
    Value* result = nullptr;
    bool carrying_target = true;  // carry_* still holds the key being placed
    while (true) {
      if (dist_[idx] == 0) {
        slots_[idx].first = std::move(carry_key);
        slots_[idx].second = std::move(carry_value);
        dist_[idx] = dist;
        ++size_;
        if (carrying_target) {
          *inserted = true;
          result = &slots_[idx].second;
        }
        return result;
      }
      if (carrying_target && slots_[idx].first == carry_key) {
        *inserted = false;
        return &slots_[idx].second;
      }
      if (dist_[idx] < dist) {
        // Rob the richer entry: park the carried pair here, keep walking
        // with the evicted one until it finds an empty slot.
        std::swap(slots_[idx].first, carry_key);
        std::swap(slots_[idx].second, carry_value);
        std::swap(dist_[idx], dist);
        if (carrying_target) {
          *inserted = true;
          result = &slots_[idx].second;
          carrying_target = false;
        }
      }
      idx = (idx + 1) & mask_;
      ++dist;
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::pair<Key, Value>> old_slots = std::move(slots_);
    std::vector<std::uint32_t> old_dist = std::move(dist_);
    slots_.clear();
    slots_.resize(new_capacity);  // not assign(): values may be move-only
    dist_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_dist[i] != 0) {
        bool inserted = false;
        *slot_for(old_slots[i].first, &inserted) = std::move(old_slots[i].second);
      }
    }
  }

  std::vector<std::pair<Key, Value>> slots_;
  /// Probe distance + 1 of each slot; 0 = empty. Parallel array keeps the
  /// occupancy scan off the (wider) slot cache lines.
  std::vector<std::uint32_t> dist_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace livesec
