#include "common/random.h"

#include <cmath>
#include <vector>

namespace livesec {

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) return 0;
  // Inverse-CDF over the (small) support; n is bounded in our workloads so a
  // linear scan is simpler than the rejection method and exactly reproducible.
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) total += 1.0 / std::pow(static_cast<double>(r + 1), s);
  double target = uniform01() * total;
  for (std::size_t r = 0; r < n; ++r) {
    target -= 1.0 / std::pow(static_cast<double>(r + 1), s);
    if (target <= 0.0) return r;
  }
  return n - 1;
}

}  // namespace livesec
