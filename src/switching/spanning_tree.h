// Spanning-tree computation for loop-free legacy switching (paper §III.C.1:
// "we owe this feature to the spanning tree protocol ... in the legacy
// switching network").
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace livesec::sw {

/// An undirected graph of legacy switches; edges carry the (switch, port)
/// pair on each side so that the computed blocked set can be applied back to
/// EthernetSwitch instances.
class SpanningTree {
 public:
  struct EdgeEnd {
    std::uint32_t node;
    std::uint32_t port;
    friend auto operator<=>(const EdgeEnd&, const EdgeEnd&) = default;
  };
  struct Edge {
    EdgeEnd a;
    EdgeEnd b;
    /// Lower cost edges are preferred in the tree. Ties broken by (a, b) ids
    /// so the computation is deterministic (mirrors STP's bridge-id ordering).
    std::uint32_t cost = 1;
  };

  void add_node(std::uint32_t node) { nodes_.insert(node); }
  void add_edge(Edge edge);

  /// Computes a minimum spanning forest (Kruskal). Returns the edges NOT in
  /// the tree — the ones whose ports must be blocked to break loops.
  std::vector<Edge> compute_blocked() const;

  /// Edges in the spanning tree itself.
  std::vector<Edge> compute_tree() const;

  /// True when the graph is connected (single tree covers all nodes).
  bool connected() const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

 private:
  /// Partitions edges into (tree, blocked).
  std::pair<std::vector<Edge>, std::vector<Edge>> kruskal() const;

  std::set<std::uint32_t> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace livesec::sw
