// OF Wi-Fi access point (Pantou on OpenWrt in the paper's deployment).
#pragma once

#include <unordered_set>

#include "switching/openflow_switch.h"

namespace livesec::sw {

/// An OpenFlow-enabled wireless AP: an OpenFlowSwitch whose station-facing
/// ports share one radio. Paper §V.B.1 measured ~43 Mbps UDP for a single
/// Pantou AP, which is the default radio budget here.
///
/// The shared radio is modeled as an additional serialization stage: every
/// frame to or from any station occupies the radio for bytes*8/radio_rate,
/// so aggregate station throughput is capped at the radio rate regardless of
/// how many stations associate.
class WifiAccessPoint : public OpenFlowSwitch {
 public:
  struct WifiConfig {
    double radio_bps = 43e6;  // Pantou UDP measurement from the paper
    Config switch_config = {
        // OpenWrt-class CPU: noticeably slower pipeline than a Xeon OvS.
        .processing_delay = 30 * kMicrosecond,
        .buffer_capacity = 256,
        .default_idle_timeout = 0,
    };
  };

  WifiAccessPoint(sim::Simulator& sim, std::string name, DatapathId dpid);
  WifiAccessPoint(sim::Simulator& sim, std::string name, DatapathId dpid, WifiConfig config);

  /// Adds a wireless station port (shares the radio).
  sim::Port& add_station_port();
  /// Adds the wired uplink port toward the legacy fabric.
  sim::Port& add_uplink_port();

  void handle_packet(PortId in_port, pkt::PacketPtr packet) override;

  double radio_bps() const { return config_.radio_bps; }

 private:
  bool is_station_port(PortId port) const;

  WifiConfig config_;
  SimTime radio_busy_until_ = 0;
  // Hash set: is_station_port sits on the per-frame radio path.
  std::unordered_set<PortId> station_ports_;
};

}  // namespace livesec::sw
