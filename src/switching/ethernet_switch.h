// Legacy-Switching layer: a classic learning Ethernet switch.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/mac_address.h"
#include "common/types.h"
#include "sim/node.h"

namespace livesec::sw {

/// A traditional L2 switch of the Legacy-Switching layer (paper §III.B).
///
/// Behaviour: learn source MAC -> ingress port; forward to the learned port
/// for known unicast destinations; flood otherwise (and for broadcast /
/// multicast). Ports can be administratively blocked by the spanning-tree
/// computation to keep redundant topologies loop-free; blocked ports drop
/// all traffic except nothing-at-all (data and floods alike), matching STP's
/// blocking state.
///
/// Link aggregation (802.3ad-style, the paper's §III.B "Equal Cost Multiple
/// Path" building block): several physical ports can be bonded into one
/// logical port. MAC learning records the bond; unicast forwarding spreads
/// flows across members by 9-tuple hash; floods use one designated member.
class EthernetSwitch : public sim::Node {
 public:
  /// Logical port id of a bond (disjoint from physical PortIds).
  static constexpr PortId kBondBase = 0x80000000u;
  struct Config {
    /// Learned entries are forgotten after this idle time (0 = never).
    SimTime mac_aging = 300 * kSecond;
    /// Per-packet forwarding latency (store-and-forward pipeline cost).
    SimTime forwarding_delay = 2 * kMicrosecond;
  };

  EthernetSwitch(sim::Simulator& sim, std::string name);
  EthernetSwitch(sim::Simulator& sim, std::string name, Config config);

  void handle_packet(PortId in_port, pkt::PacketPtr packet) override;

  /// Marks a port blocked/unblocked (driven by SpanningTree).
  void set_port_blocked(PortId port, bool blocked);
  bool port_blocked(PortId port) const;

  /// Aggregates existing physical ports into one logical port; returns its
  /// logical id (>= kBondBase). Members must not already be in a bond.
  PortId create_bond(const std::vector<PortId>& members);
  /// Members of a bond (empty for non-bond ids).
  const std::vector<PortId>& bond_members(PortId bond) const;
  /// Per-member forwarded-packet counts (ECMP balance diagnostics).
  std::uint64_t member_tx_count(PortId physical_port) const;
  /// The bond a physical port belongs to, or the port itself if unbonded.
  PortId bond_of_member(PortId physical) const { return logical_port(physical); }

  /// Current MAC table size (for tests and monitoring).
  std::size_t mac_table_size() const { return mac_table_.size(); }

  /// Returns the learned port for `mac`, or kInvalidPort.
  PortId learned_port(const MacAddress& mac) const;

  std::uint64_t flooded_packets() const { return flooded_; }
  std::uint64_t forwarded_packets() const { return forwarded_; }

 private:
  struct MacEntry {
    PortId port;
    SimTime last_seen;
  };

  void forward(PortId out, pkt::PacketPtr packet, const pkt::Packet& for_hash);
  void flood(PortId in_port, const pkt::PacketPtr& packet);
  /// Maps a physical ingress port to its learning identity (bond or self).
  PortId logical_port(PortId physical) const;
  /// Resolves a (possibly logical) port to the physical egress for a packet.
  PortId resolve_egress(PortId port, const pkt::Packet& packet) const;

  Config config_;
  std::unordered_map<MacAddress, MacEntry> mac_table_;
  std::unordered_map<PortId, bool> blocked_;
  std::vector<std::vector<PortId>> bonds_;
  std::unordered_map<PortId, PortId> member_to_bond_;
  std::unordered_map<PortId, std::uint64_t> member_tx_;
  std::uint64_t flooded_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace livesec::sw
