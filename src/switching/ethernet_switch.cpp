#include "switching/ethernet_switch.h"

#include <cassert>

#include "packet/flow_key.h"
#include "sim/simulator.h"

namespace livesec::sw {

EthernetSwitch::EthernetSwitch(sim::Simulator& sim, std::string name)
    : EthernetSwitch(sim, std::move(name), Config{}) {}

EthernetSwitch::EthernetSwitch(sim::Simulator& sim, std::string name, Config config)
    : Node(sim, std::move(name)), config_(config) {}

void EthernetSwitch::set_port_blocked(PortId port, bool blocked) { blocked_[port] = blocked; }

bool EthernetSwitch::port_blocked(PortId port) const {
  auto it = blocked_.find(port);
  return it != blocked_.end() && it->second;
}

PortId EthernetSwitch::create_bond(const std::vector<PortId>& members) {
  assert(!members.empty());
  for (PortId member : members) {
    assert(!member_to_bond_.contains(member) && "port already bonded");
  }
  const PortId bond = kBondBase + static_cast<PortId>(bonds_.size());
  bonds_.push_back(members);
  for (PortId member : members) member_to_bond_[member] = bond;
  return bond;
}

const std::vector<PortId>& EthernetSwitch::bond_members(PortId bond) const {
  static const std::vector<PortId> kEmpty;
  if (bond < kBondBase || bond - kBondBase >= bonds_.size()) return kEmpty;
  return bonds_[bond - kBondBase];
}

std::uint64_t EthernetSwitch::member_tx_count(PortId physical_port) const {
  auto it = member_tx_.find(physical_port);
  return it == member_tx_.end() ? 0 : it->second;
}

PortId EthernetSwitch::logical_port(PortId physical) const {
  auto it = member_to_bond_.find(physical);
  return it == member_to_bond_.end() ? physical : it->second;
}

PortId EthernetSwitch::resolve_egress(PortId port, const pkt::Packet& packet) const {
  if (port < kBondBase) return port;
  const auto& members = bond_members(port);
  if (members.empty()) return kInvalidPort;
  // Flow-hash member selection: all packets of one flow take one member
  // (in-order delivery), different flows spread across members (ECMP).
  const std::uint64_t h = pkt::FlowKey::from_packet(packet).hash();
  return members[h % members.size()];
}

PortId EthernetSwitch::learned_port(const MacAddress& mac) const {
  auto it = mac_table_.find(mac);
  if (it == mac_table_.end()) return kInvalidPort;
  if (config_.mac_aging > 0 && simulator().now() - it->second.last_seen > config_.mac_aging) {
    return kInvalidPort;
  }
  return it->second.port;
}

void EthernetSwitch::handle_packet(PortId in_port, pkt::PacketPtr packet) {
  if (port_blocked(in_port)) return;
  const PortId in_logical = logical_port(in_port);

  // LLDP is a link protocol, not host traffic: flood it (the controller's
  // discovery probes must cross the fabric) but never learn from it.
  if (packet->eth.ether_type == static_cast<std::uint16_t>(pkt::EtherType::kLldp)) {
    flood(in_port, packet);
    return;
  }

  // Learn the sender's location (bond-aware: the logical port is recorded).
  if (!packet->eth.src.is_multicast() && !packet->eth.src.is_zero()) {
    mac_table_[packet->eth.src] = MacEntry{in_logical, simulator().now()};
  }

  const MacAddress dst = packet->eth.dst;
  if (dst.is_broadcast() || dst.is_multicast()) {
    flood(in_port, packet);
    return;
  }
  const PortId out = learned_port(dst);
  if (out == kInvalidPort) {
    flood(in_port, packet);
  } else if (out != in_logical) {
    forward(out, packet, *packet);
  }
  // out == in_logical: destination is back where it came from; drop
  // (standard switch behaviour — the frame already reached that segment).
}

void EthernetSwitch::forward(PortId out, pkt::PacketPtr packet, const pkt::Packet& for_hash) {
  const PortId egress = resolve_egress(out, for_hash);
  if (egress == kInvalidPort) return;
  ++forwarded_;
  if (out >= kBondBase) ++member_tx_[egress];
  simulator().schedule(config_.forwarding_delay,
                       [this, egress, packet = std::move(packet)]() mutable {
                         send(egress, std::move(packet));
                       });
}

void EthernetSwitch::flood(PortId in_port, const pkt::PacketPtr& packet) {
  ++flooded_;
  const PortId in_logical = logical_port(in_port);
  simulator().schedule(config_.forwarding_delay, [this, in_port, in_logical, packet]() {
    for (PortId p = 0; p < port_count(); ++p) {
      if (p == in_port || port_blocked(p)) continue;
      // Bond members: only the designated (first unblocked) member floods,
      // and never back into the ingress bond.
      auto bond_it = member_to_bond_.find(p);
      if (bond_it != member_to_bond_.end()) {
        if (bond_it->second == in_logical) continue;
        const auto& members = bond_members(bond_it->second);
        PortId designated = kInvalidPort;
        for (PortId member : members) {
          if (!port_blocked(member)) {
            designated = member;
            break;
          }
        }
        if (p != designated) continue;
      }
      send(p, packet);
    }
  });
}

}  // namespace livesec::sw
