#include "switching/openflow_switch.h"

#include "common/logging.h"
#include "packet/flow_key.h"
#include "packet/packet_pool.h"
#include "sim/simulator.h"

namespace livesec::sw {

OpenFlowSwitch::OpenFlowSwitch(sim::Simulator& sim, std::string name, DatapathId dpid)
    : OpenFlowSwitch(sim, std::move(name), dpid, Config{}) {}

OpenFlowSwitch::OpenFlowSwitch(sim::Simulator& sim, std::string name, DatapathId dpid,
                               Config config)
    : Node(sim, std::move(name)), dpid_(dpid), config_(config) {
  table_.set_removal_callback([this](const of::FlowEntry& entry, of::RemovalReason reason) {
    if (channel_ == nullptr) return;
    of::FlowRemoved removed;
    removed.match = entry.match;
    removed.priority = entry.priority;
    removed.cookie = entry.cookie;
    removed.reason = reason;
    removed.packet_count = entry.packet_count;
    removed.byte_count = entry.byte_count;
    channel_->send_to_controller(removed);
  });
}

sim::Port& OpenFlowSwitch::add_port(PortRole role) {
  sim::Port& p = Node::add_port();
  roles_[p.id()] = role;
  return p;
}

PortRole OpenFlowSwitch::port_role(PortId port) const {
  auto it = roles_.find(port);
  return it == roles_.end() ? PortRole::kNetworkPeriphery : it->second;
}

void OpenFlowSwitch::connect_controller(of::SecureChannel& channel) {
  channel_ = &channel;
  of::FeaturesReply features;
  features.datapath_id = dpid_;
  features.num_ports = static_cast<std::uint32_t>(port_count());
  features.name = name();
  channel.connect(features);
}

void OpenFlowSwitch::handle_packet(PortId in_port, pkt::PacketPtr packet) {
  simulator().schedule(config_.processing_delay,
                       [this, in_port, packet = std::move(packet)]() mutable {
                         process(in_port, std::move(packet));
                       });
}

void OpenFlowSwitch::process(PortId in_port, pkt::PacketPtr packet) {
  // LLDP probes always reach the controller regardless of port role: they
  // drive the AS-layer link discovery of paper §III.C.1, and they arrive on
  // Legacy-Switching ports by construction.
  if (packet->eth.ether_type == static_cast<std::uint16_t>(pkt::EtherType::kLldp)) {
    punt_to_controller(in_port, std::move(packet));
    return;
  }
  const pkt::FlowKey key = pkt::FlowKey::from_packet(*packet);
  const of::FlowEntry* entry =
      table_.lookup(in_port, key, packet->wire_size(), simulator().now());
  if (entry != nullptr) {
    execute_actions(entry->actions, in_port, std::move(packet));
    return;
  }
  // Table miss. NP-side ports punt to the controller (location discovery and
  // routing are controller-driven, paper §III.C.2-3); LS-side ports drop
  // silently — those packets are legacy-fabric floods not addressed to a
  // flow this switch serves, and punting them would melt the channel.
  if (port_role(in_port) == PortRole::kNetworkPeriphery) {
    punt_to_controller(in_port, std::move(packet));
  } else {
    ++miss_drops_;
    log_debug(name()) << "LS-miss in_port=" << in_port << " " << key.to_string();
  }
}

void OpenFlowSwitch::execute_actions(const of::ActionList& actions, PortId in_port,
                                     pkt::PacketPtr packet) {
  // Copy-on-write header rewrite: consecutive set-field actions share ONE
  // pooled copy of the packet (the common redirect entry rewrites both MACs,
  // paper §IV.A). The copy stays privately mutable only until it is sent or
  // punted — after that it may be referenced elsewhere, so the next rewrite
  // takes a fresh copy.
  pkt::Packet* mut = nullptr;
  const auto mutable_packet = [&]() -> pkt::Packet& {
    if (mut == nullptr) {
      auto copy = pkt::pooled_packet(pkt::Packet(*packet));
      mut = copy.get();
      packet = std::move(copy);
    }
    return *mut;
  };
  for (const of::Action& action : actions) {
    if (const auto* out = std::get_if<of::ActionOutput>(&action)) {
      ++packets_forwarded_;
      send(out->port, packet);
      mut = nullptr;
    } else if (std::get_if<of::ActionFlood>(&action)) {
      for (PortId p = 0; p < port_count(); ++p) {
        if (p != in_port) send(p, packet);
      }
      ++packets_forwarded_;
      mut = nullptr;
    } else if (std::get_if<of::ActionController>(&action)) {
      punt_to_controller(in_port, packet);
      mut = nullptr;
    } else if (const auto* set_dst = std::get_if<of::ActionSetDlDst>(&action)) {
      mutable_packet().eth.dst = set_dst->mac;
    } else if (const auto* set_src = std::get_if<of::ActionSetDlSrc>(&action)) {
      mutable_packet().eth.src = set_src->mac;
    } else if (std::get_if<of::ActionDrop>(&action)) {
      return;
    }
  }
}

void OpenFlowSwitch::punt_to_controller(PortId in_port, pkt::PacketPtr packet) {
  if (channel_ == nullptr || !channel_->connected()) {
    ++miss_drops_;
    return;
  }
  if (buffers_.size() >= config_.buffer_capacity) buffers_.pop_front();
  const std::uint32_t id = next_buffer_id_++;
  buffers_.push_back(Buffered{id, in_port, packet});

  of::PacketIn pin;
  pin.buffer_id = id;
  pin.in_port = in_port;
  pin.reason = of::PacketInReason::kNoMatch;
  pin.packet = std::move(packet);
  ++packet_ins_;
  channel_->send_to_controller(std::move(pin));
}

pkt::PacketPtr OpenFlowSwitch::take_buffered(std::uint32_t buffer_id) {
  for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
    if (it->id == buffer_id) {
      pkt::PacketPtr p = std::move(it->packet);
      buffers_.erase(it);
      return p;
    }
  }
  return nullptr;
}

void OpenFlowSwitch::apply_flow_mod(const of::FlowMod& fm) {
  switch (fm.command) {
    case of::FlowModCommand::kAdd:
      table_.add(fm.entry, simulator().now());
      break;
    case of::FlowModCommand::kModifyStrict:
      // OF 1.0 MODIFY semantics: no matching entry means insert. Matters to
      // the verdict-driven rewrite — if the entry idle-expired in the gap
      // between the flow's last packet and the verdict, the direct-path
      // rewrite must still land instead of silently no-opping.
      if (table_.modify_strict(fm.entry.match, fm.entry.priority, fm.entry.actions) == 0) {
        table_.add(fm.entry, simulator().now());
      }
      break;
    case of::FlowModCommand::kDeleteStrict:
      table_.remove_strict(fm.entry.match, fm.entry.priority, simulator().now());
      break;
    case of::FlowModCommand::kDelete:
      table_.remove_matching(fm.entry.match, simulator().now());
      break;
  }
}

void OpenFlowSwitch::release_buffered(std::uint32_t buffer_id) {
  if (buffer_id == of::PacketOut::kNoBuffer) return;
  // Release the parked packet through the (possibly new) table.
  for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
    if (it->id == buffer_id) {
      PortId in_port = it->in_port;
      pkt::PacketPtr p = std::move(it->packet);
      buffers_.erase(it);
      process(in_port, std::move(p));
      break;
    }
  }
}

void OpenFlowSwitch::handle_controller_message(const of::Message& message) {
  if (const auto* fm = std::get_if<of::FlowMod>(&message)) {
    apply_flow_mod(*fm);
    release_buffered(fm->buffer_id);
  } else if (const auto* batch = std::get_if<of::FlowModBatch>(&message)) {
    // Batched install: every mod lands in the table before any buffered
    // packet is released, so a release through the ingress entry already
    // sees the switch's complete share of the path.
    for (const of::FlowMod& mod : batch->mods) apply_flow_mod(mod);
    for (const of::FlowMod& mod : batch->mods) release_buffered(mod.buffer_id);
  } else if (const auto* po = std::get_if<of::PacketOut>(&message)) {
    pkt::PacketPtr packet =
        po->buffer_id == of::PacketOut::kNoBuffer ? po->packet : take_buffered(po->buffer_id);
    if (packet) execute_actions(po->actions, po->in_port, std::move(packet));
  } else if (const auto* echo = std::get_if<of::EchoRequest>(&message)) {
    if (channel_) channel_->send_to_controller(of::EchoReply{echo->token});
  } else if (std::get_if<of::StatsRequest>(&message)) {
    of::StatsReply reply;
    reply.table_lookups = table_.lookups();
    reply.table_hits = table_.hits();
    reply.flows.reserve(table_.size());
    table_.for_each_entry([&reply](const of::FlowEntry& e) {
      // An entry drops when its action list is empty or an explicit drop
      // action precedes any output — how the controller's of::drop() and an
      // action-less FlowMod both look on the datapath.
      bool drops = true;
      for (const of::Action& action : e.actions) {
        if (std::get_if<of::ActionDrop>(&action) != nullptr) break;
        if (std::get_if<of::ActionOutput>(&action) != nullptr ||
            std::get_if<of::ActionFlood>(&action) != nullptr ||
            std::get_if<of::ActionController>(&action) != nullptr) {
          drops = false;
          break;
        }
      }
      reply.flows.push_back(of::FlowStats{e.match, e.priority, e.packet_count, e.byte_count, drops});
    });
    if (channel_) channel_->send_to_controller(std::move(reply));
  }
}

}  // namespace livesec::sw
