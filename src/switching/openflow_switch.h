// The Access-Switching layer datapath: an OpenFlow-enabled switch (OvS-like).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "openflow/channel.h"
#include "openflow/flow_table.h"
#include "openflow/messages.h"
#include "sim/node.h"

namespace livesec::sw {

/// Role of each switch port. The paper distinguishes Network-Periphery
/// interfaces (hosts, service elements, wireless users) from the single
/// Legacy-Switching interface that attaches the AS switch to the legacy
/// fabric (§III.C: "AS switches are responsible for providing legitimate
/// interfaces for Network-Periphery layer").
enum class PortRole {
  kNetworkPeriphery,  // host / SE facing: table miss => PacketIn
  kLegacySwitching,   // legacy fabric facing: table miss => silent drop
};

/// An OpenFlow 1.0-style switch: flow table + controller channel + packet
/// buffering. This models OvS release 1.1.0 as deployed in the paper's
/// testbed and the Pantou AP datapath.
class OpenFlowSwitch : public sim::Node, public of::SwitchEndpoint {
 public:
  struct Config {
    /// Per-packet pipeline cost (flow table lookup + forwarding). The
    /// paper's OvS 1.1.0 userspace datapath on Xeon 5500 costs tens of
    /// microseconds per packet; this is pure pipeline latency (packets
    /// overlap), not a rate limit.
    SimTime processing_delay = 25 * kMicrosecond;
    /// Max packets parked awaiting a controller decision.
    std::size_t buffer_capacity = 1024;
    /// Default idle timeout stamped on no entries here; the controller picks
    /// timeouts per FlowMod. Kept for future use by local apps.
    SimTime default_idle_timeout = 0;
  };

  OpenFlowSwitch(sim::Simulator& sim, std::string name, DatapathId dpid);
  OpenFlowSwitch(sim::Simulator& sim, std::string name, DatapathId dpid, Config config);

  // --- wiring -------------------------------------------------------------
  /// Adds a port with the given role; returns the port.
  sim::Port& add_port(PortRole role);
  PortRole port_role(PortId port) const;

  /// Attaches the controller channel and performs the features handshake.
  void connect_controller(of::SecureChannel& channel);

  // --- sim::Node ----------------------------------------------------------
  void handle_packet(PortId in_port, pkt::PacketPtr packet) override;

  // --- of::SwitchEndpoint ---------------------------------------------------
  DatapathId datapath_id() const override { return dpid_; }
  void handle_controller_message(const of::Message& message) override;

  // --- introspection --------------------------------------------------------
  of::FlowTable& flow_table() { return table_; }
  const of::FlowTable& flow_table() const { return table_; }
  std::uint64_t packet_ins_sent() const { return packet_ins_; }
  std::uint64_t miss_drops() const { return miss_drops_; }
  std::uint64_t packets_forwarded() const { return packets_forwarded_; }

 private:
  void process(PortId in_port, pkt::PacketPtr packet);
  /// Applies one flow-mod's table mutation (no buffered-packet release).
  void apply_flow_mod(const of::FlowMod& fm);
  /// Releases a parked packet through the current table, if `buffer_id` set.
  void release_buffered(std::uint32_t buffer_id);
  void execute_actions(const of::ActionList& actions, PortId in_port, pkt::PacketPtr packet);
  void punt_to_controller(PortId in_port, pkt::PacketPtr packet);
  pkt::PacketPtr take_buffered(std::uint32_t buffer_id);

  DatapathId dpid_;
  Config config_;
  of::FlowTable table_;
  of::SecureChannel* channel_ = nullptr;
  std::unordered_map<PortId, PortRole> roles_;

  struct Buffered {
    std::uint32_t id;
    PortId in_port;
    pkt::PacketPtr packet;
  };
  std::deque<Buffered> buffers_;
  std::uint32_t next_buffer_id_ = 1;

  std::uint64_t packet_ins_ = 0;
  std::uint64_t miss_drops_ = 0;
  std::uint64_t packets_forwarded_ = 0;
};

}  // namespace livesec::sw
