#include "switching/wifi_ap.h"

#include "sim/simulator.h"

namespace livesec::sw {

WifiAccessPoint::WifiAccessPoint(sim::Simulator& sim, std::string name, DatapathId dpid)
    : WifiAccessPoint(sim, std::move(name), dpid, WifiConfig{}) {}

WifiAccessPoint::WifiAccessPoint(sim::Simulator& sim, std::string name, DatapathId dpid,
                                 WifiConfig config)
    : OpenFlowSwitch(sim, std::move(name), dpid, config.switch_config), config_(config) {}

sim::Port& WifiAccessPoint::add_station_port() {
  sim::Port& p = add_port(PortRole::kNetworkPeriphery);
  station_ports_.insert(p.id());
  return p;
}

sim::Port& WifiAccessPoint::add_uplink_port() { return add_port(PortRole::kLegacySwitching); }

bool WifiAccessPoint::is_station_port(PortId port) const { return station_ports_.contains(port); }

void WifiAccessPoint::handle_packet(PortId in_port, pkt::PacketPtr packet) {
  if (!is_station_port(in_port)) {
    OpenFlowSwitch::handle_packet(in_port, std::move(packet));
    return;
  }
  // Station frames first contend for the shared radio: serialize at the
  // radio rate behind whatever is already in the air.
  const SimTime now = simulator().now();
  const SimTime airtime = static_cast<SimTime>(static_cast<double>(packet->wire_size()) * 8.0 /
                                               config_.radio_bps * kSecond);
  const SimTime start = radio_busy_until_ > now ? radio_busy_until_ : now;
  radio_busy_until_ = start + airtime;
  const SimTime delay = radio_busy_until_ - now;
  simulator().schedule(delay, [this, in_port, packet = std::move(packet)]() mutable {
    OpenFlowSwitch::handle_packet(in_port, std::move(packet));
  });
}

}  // namespace livesec::sw
