#include "switching/spanning_tree.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace livesec::sw {

namespace {

/// Union-find over arbitrary node ids.
class DisjointSet {
 public:
  std::uint32_t find(std::uint32_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    if (it->second == x) return x;
    const std::uint32_t root = find(it->second);
    parent_[x] = root;
    return root;
  }

  bool unite(std::uint32_t a, std::uint32_t b) {
    const std::uint32_t ra = find(a);
    const std::uint32_t rb = find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> parent_;
};

}  // namespace

void SpanningTree::add_edge(Edge edge) {
  nodes_.insert(edge.a.node);
  nodes_.insert(edge.b.node);
  edges_.push_back(edge);
}

std::pair<std::vector<SpanningTree::Edge>, std::vector<SpanningTree::Edge>> SpanningTree::kruskal()
    const {
  std::vector<Edge> sorted = edges_;
  std::stable_sort(sorted.begin(), sorted.end(), [](const Edge& x, const Edge& y) {
    if (x.cost != y.cost) return x.cost < y.cost;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  DisjointSet ds;
  std::vector<Edge> tree;
  std::vector<Edge> blocked;
  for (const Edge& e : sorted) {
    if (ds.unite(e.a.node, e.b.node)) {
      tree.push_back(e);
    } else {
      blocked.push_back(e);
    }
  }
  return {std::move(tree), std::move(blocked)};
}

std::vector<SpanningTree::Edge> SpanningTree::compute_blocked() const { return kruskal().second; }

std::vector<SpanningTree::Edge> SpanningTree::compute_tree() const { return kruskal().first; }

bool SpanningTree::connected() const {
  if (nodes_.size() <= 1) return true;
  return kruskal().first.size() == nodes_.size() - 1;
}

}  // namespace livesec::sw
