// Deterministic campus-at-scale scenario generator (DESIGN.md §9).
//
// The scale benchmarks and churn tests need a realistic large campus —
// thousands of AS switches, up to a million hosts, a diurnal traffic mix
// with roaming, DHCP lease reuse and flash crowds — but instantiating a
// simulator object per host would cost more memory than the controller
// state under test. The generator therefore materializes nothing: every
// host record is computed on demand from its index (O(1), no storage), and
// the workload is an endless, strictly time-ordered event stream drawn
// from a counter-based SplitMix64 stream, so the same seed always produces
// the same campus and the same traffic — across runs and platforms.
#pragma once

#include <cstdint>

#include "common/hash.h"
#include "common/ip_address.h"
#include "common/mac_address.h"
#include "common/types.h"

namespace livesec::scenario {

struct CampusConfig {
  std::uint32_t hosts = 10'000;
  /// Access ports per AS switch; the switch count follows from `hosts`.
  std::uint32_t hosts_per_switch = 256;
  std::uint64_t seed = 0x11BE5EC;

  /// Mean flow starts per host per second at peak intensity.
  double flows_per_host_per_sec = 0.05;
  /// Fraction of events that are a host roaming to another switch (Wi-Fi
  /// mobility) and a DHCP lease ending up reassigned to another host.
  double roam_fraction = 0.02;
  double relese_fraction = 0.01;

  /// Diurnal cycle length; intensity swings between `night_floor` and 1.
  SimTime day_length = 24 * 3600 * kSecond;
  double night_floor = 0.15;

  /// Flash crowds: every `flash_interval` a window of `flash_duration`
  /// concentrates `flash_bias` of flow traffic onto `flash_targets` hosts
  /// (a lecture hall joining a stream, a release download).
  SimTime flash_interval = 4 * 3600 * kSecond;
  SimTime flash_duration = 10 * 60 * kSecond;
  double flash_bias = 0.7;
  std::uint32_t flash_targets = 8;
};

/// One host of the generated campus, computed from its index.
struct CampusHost {
  std::uint32_t index = 0;
  MacAddress mac;
  Ipv4Address ip;
  DatapathId dpid = 0;  // AS switch the host hangs off
  PortId port = kInvalidPort;
};

class CampusGenerator {
 public:
  /// Workload event kinds, in the order the controller would see them.
  enum class EventKind : std::uint8_t {
    kFlow,     ///< `host` opens a flow to `peer`
    kRoam,     ///< `host` re-attaches at `peer`'s switch (keeps its IP)
    kReLease,  ///< `host`'s DHCP lease expires; its IP is re-leased to `peer`
  };

  struct Event {
    EventKind kind = EventKind::kFlow;
    SimTime at = 0;  // strictly non-decreasing across next_event() calls
    std::uint32_t host = 0;
    std::uint32_t peer = 0;
  };

  explicit CampusGenerator(CampusConfig config);

  const CampusConfig& config() const { return config_; }

  /// Number of AS switches the host population spreads over.
  std::uint32_t switch_count() const { return switch_count_; }
  /// Port every AS switch uses as its Legacy-Switching uplink.
  PortId ls_uplink_port() const { return config_.hosts_per_switch + 1; }

  /// Host record for index `i` (O(1), nothing stored). MACs carry the
  /// locally-administered bit; IPs are drawn from 10.0.0.0/8.
  CampusHost host(std::uint32_t i) const;

  /// Traffic intensity in [night_floor, 1] at simulated time `t`.
  double diurnal_intensity(SimTime t) const;
  /// True while a flash-crowd window is open at `t`.
  bool in_flash_crowd(SimTime t) const;

  /// Draws the next workload event. The stream is endless and strictly
  /// time-ordered; interarrival times shrink with diurnal intensity.
  Event next_event();

  /// Current position of the event clock.
  SimTime now() const { return clock_; }

 private:
  /// Counter-based deterministic uniform draw.
  std::uint64_t next_u64() { return splitmix64(seed_ ^ ++counter_); }
  double next_unit();  // uniform in [0, 1)
  std::uint32_t next_host() { return static_cast<std::uint32_t>(next_u64() % config_.hosts); }

  CampusConfig config_;
  std::uint32_t switch_count_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t counter_ = 0;
  SimTime clock_ = 0;
};

}  // namespace livesec::scenario
