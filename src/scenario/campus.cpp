#include "scenario/campus.h"

#include <algorithm>
#include <cmath>

namespace livesec::scenario {

CampusGenerator::CampusGenerator(CampusConfig config)
    : config_(config), seed_(splitmix64(config.seed)) {
  config_.hosts = std::max<std::uint32_t>(config_.hosts, 1);
  config_.hosts_per_switch = std::max<std::uint32_t>(config_.hosts_per_switch, 1);
  switch_count_ = (config_.hosts + config_.hosts_per_switch - 1) / config_.hosts_per_switch;
}

CampusHost CampusGenerator::host(std::uint32_t i) const {
  CampusHost h;
  h.index = i;
  // Locally-administered unicast MACs; index-derived, so host(i) needs no
  // lookup table even at a million hosts.
  h.mac = MacAddress::from_uint64(0x02'0000'0000'00ull | i);
  // 10.0.0.0/8 gives 16M addresses; +1 skips the network address.
  h.ip = Ipv4Address((10u << 24) | (i + 1));
  h.dpid = 1 + i / config_.hosts_per_switch;
  h.port = static_cast<PortId>(1 + i % config_.hosts_per_switch);
  return h;
}

double CampusGenerator::diurnal_intensity(SimTime t) const {
  if (config_.day_length <= 0) return 1.0;
  const double phase =
      2.0 * 3.14159265358979323846 * static_cast<double>(t % config_.day_length) /
      static_cast<double>(config_.day_length);
  // Cosine day curve: midnight trough, midday peak.
  const double wave = 0.5 * (1.0 - std::cos(phase));
  return config_.night_floor + (1.0 - config_.night_floor) * wave;
}

bool CampusGenerator::in_flash_crowd(SimTime t) const {
  if (config_.flash_interval <= 0 || config_.flash_duration <= 0) return false;
  // Window opens at the middle of each interval (never at t = 0, so cold
  // starts are not instantly in a crowd).
  const SimTime pos = t % config_.flash_interval;
  const SimTime open = config_.flash_interval / 2;
  return pos >= open && pos < open + config_.flash_duration;
}

double CampusGenerator::next_unit() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

CampusGenerator::Event CampusGenerator::next_event() {
  // Poisson-ish arrivals: exponential interarrival whose mean tracks the
  // diurnal intensity (fewer events at night, a rush at midday).
  const double rate_per_sec = std::max(
      config_.flows_per_host_per_sec * config_.hosts * diurnal_intensity(clock_), 1e-9);
  const double mean_gap = static_cast<double>(kSecond) / rate_per_sec;
  const double draw = -std::log(1.0 - next_unit());
  clock_ += std::max<SimTime>(1, static_cast<SimTime>(draw * mean_gap));

  Event ev;
  ev.at = clock_;
  ev.host = next_host();
  const double kind = next_unit();
  if (kind < config_.roam_fraction) {
    ev.kind = EventKind::kRoam;
    ev.peer = next_host();  // re-attach at this host's switch
  } else if (kind < config_.roam_fraction + config_.relese_fraction) {
    ev.kind = EventKind::kReLease;
    ev.peer = next_host();  // the expired lease is reassigned to this host
  } else {
    ev.kind = EventKind::kFlow;
    if (in_flash_crowd(clock_) && next_unit() < config_.flash_bias) {
      // Hot targets rotate per window, drawn deterministically from the
      // window ordinal so every generator instance agrees on the crowd.
      const std::uint64_t window = static_cast<std::uint64_t>(clock_ / config_.flash_interval);
      const std::uint64_t pick = next_u64() % std::max<std::uint32_t>(config_.flash_targets, 1);
      ev.peer = static_cast<std::uint32_t>(splitmix64(seed_ ^ (window << 8) ^ pick) %
                                           config_.hosts);
    } else {
      ev.peer = next_host();
    }
  }
  if (ev.peer == ev.host) ev.peer = (ev.peer + 1) % config_.hosts;
  return ev;
}

}  // namespace livesec::scenario
