file(REMOVE_RECURSE
  "CMakeFiles/example_campus_deployment.dir/campus_deployment.cpp.o"
  "CMakeFiles/example_campus_deployment.dir/campus_deployment.cpp.o.d"
  "example_campus_deployment"
  "example_campus_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_campus_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
