# Empty dependencies file for example_campus_deployment.
# This may be replaced when dependencies are built.
