file(REMOVE_RECURSE
  "CMakeFiles/example_interactive_policy.dir/interactive_policy.cpp.o"
  "CMakeFiles/example_interactive_policy.dir/interactive_policy.cpp.o.d"
  "example_interactive_policy"
  "example_interactive_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_interactive_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
