# Empty dependencies file for example_interactive_policy.
# This may be replaced when dependencies are built.
