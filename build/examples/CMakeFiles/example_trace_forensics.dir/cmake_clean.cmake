file(REMOVE_RECURSE
  "CMakeFiles/example_trace_forensics.dir/trace_forensics.cpp.o"
  "CMakeFiles/example_trace_forensics.dir/trace_forensics.cpp.o.d"
  "example_trace_forensics"
  "example_trace_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
