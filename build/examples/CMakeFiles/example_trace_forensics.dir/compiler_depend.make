# Empty compiler generated dependencies file for example_trace_forensics.
# This may be replaced when dependencies are built.
