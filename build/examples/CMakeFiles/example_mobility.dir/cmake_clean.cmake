file(REMOVE_RECURSE
  "CMakeFiles/example_mobility.dir/mobility.cpp.o"
  "CMakeFiles/example_mobility.dir/mobility.cpp.o.d"
  "example_mobility"
  "example_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
