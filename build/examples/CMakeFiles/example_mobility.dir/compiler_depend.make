# Empty compiler generated dependencies file for example_mobility.
# This may be replaced when dependencies are built.
