# Empty dependencies file for bench_ablation_control.
# This may be replaced when dependencies are built.
