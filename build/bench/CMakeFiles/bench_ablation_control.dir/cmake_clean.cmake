file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_control.dir/bench_ablation_control.cpp.o"
  "CMakeFiles/bench_ablation_control.dir/bench_ablation_control.cpp.o.d"
  "bench_ablation_control"
  "bench_ablation_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
