file(REMOVE_RECURSE
  "CMakeFiles/bench_se_scaling.dir/bench_se_scaling.cpp.o"
  "CMakeFiles/bench_se_scaling.dir/bench_se_scaling.cpp.o.d"
  "bench_se_scaling"
  "bench_se_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_se_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
