file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_onpath.dir/bench_baseline_onpath.cpp.o"
  "CMakeFiles/bench_baseline_onpath.dir/bench_baseline_onpath.cpp.o.d"
  "bench_baseline_onpath"
  "bench_baseline_onpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_onpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
