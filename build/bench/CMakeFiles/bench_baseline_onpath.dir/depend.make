# Empty dependencies file for bench_baseline_onpath.
# This may be replaced when dependencies are built.
