file(REMOVE_RECURSE
  "CMakeFiles/bench_access_throughput.dir/bench_access_throughput.cpp.o"
  "CMakeFiles/bench_access_throughput.dir/bench_access_throughput.cpp.o.d"
  "bench_access_throughput"
  "bench_access_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_access_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
