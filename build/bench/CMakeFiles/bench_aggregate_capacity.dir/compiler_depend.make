# Empty compiler generated dependencies file for bench_aggregate_capacity.
# This may be replaced when dependencies are built.
