file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregate_capacity.dir/bench_aggregate_capacity.cpp.o"
  "CMakeFiles/bench_aggregate_capacity.dir/bench_aggregate_capacity.cpp.o.d"
  "bench_aggregate_capacity"
  "bench_aggregate_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregate_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
