
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/livesec_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_controller_edge.cpp" "tests/CMakeFiles/livesec_tests.dir/test_controller_edge.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_controller_edge.cpp.o.d"
  "/root/repo/tests/test_controller_state.cpp" "tests/CMakeFiles/livesec_tests.dir/test_controller_state.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_controller_state.cpp.o.d"
  "/root/repo/tests/test_controller_units.cpp" "tests/CMakeFiles/livesec_tests.dir/test_controller_units.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_controller_units.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/livesec_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_firewall.cpp" "tests/CMakeFiles/livesec_tests.dir/test_firewall.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_firewall.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/livesec_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_monitor.cpp" "tests/CMakeFiles/livesec_tests.dir/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_monitor.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/livesec_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_openflow.cpp" "tests/CMakeFiles/livesec_tests.dir/test_openflow.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_openflow.cpp.o.d"
  "/root/repo/tests/test_packet.cpp" "tests/CMakeFiles/livesec_tests.dir/test_packet.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_packet.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/livesec_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_resilience.cpp" "tests/CMakeFiles/livesec_tests.dir/test_resilience.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_resilience.cpp.o.d"
  "/root/repo/tests/test_services.cpp" "tests/CMakeFiles/livesec_tests.dir/test_services.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_services.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/livesec_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_switching.cpp" "tests/CMakeFiles/livesec_tests.dir/test_switching.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_switching.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/livesec_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_vlan.cpp" "tests/CMakeFiles/livesec_tests.dir/test_vlan.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_vlan.cpp.o.d"
  "/root/repo/tests/test_webui.cpp" "tests/CMakeFiles/livesec_tests.dir/test_webui.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_webui.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/livesec_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/livesec_tests.dir/test_wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/livesec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
