# Empty compiler generated dependencies file for livesec_tests.
# This may be replaced when dependencies are built.
