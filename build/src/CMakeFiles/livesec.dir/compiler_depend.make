# Empty compiler generated dependencies file for livesec.
# This may be replaced when dependencies are built.
