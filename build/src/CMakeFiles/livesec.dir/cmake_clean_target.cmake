file(REMOVE_RECURSE
  "liblivesec.a"
)
