
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/ip_address.cpp" "src/CMakeFiles/livesec.dir/common/ip_address.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/common/ip_address.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/livesec.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/mac_address.cpp" "src/CMakeFiles/livesec.dir/common/mac_address.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/common/mac_address.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/livesec.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/common/random.cpp.o.d"
  "/root/repo/src/common/types.cpp" "src/CMakeFiles/livesec.dir/common/types.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/common/types.cpp.o.d"
  "/root/repo/src/controller/certification.cpp" "src/CMakeFiles/livesec.dir/controller/certification.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/controller/certification.cpp.o.d"
  "/root/repo/src/controller/controller.cpp" "src/CMakeFiles/livesec.dir/controller/controller.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/controller/controller.cpp.o.d"
  "/root/repo/src/controller/dhcp_pool.cpp" "src/CMakeFiles/livesec.dir/controller/dhcp_pool.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/controller/dhcp_pool.cpp.o.d"
  "/root/repo/src/controller/load_balancer.cpp" "src/CMakeFiles/livesec.dir/controller/load_balancer.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/controller/load_balancer.cpp.o.d"
  "/root/repo/src/controller/policy.cpp" "src/CMakeFiles/livesec.dir/controller/policy.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/controller/policy.cpp.o.d"
  "/root/repo/src/controller/policy_parser.cpp" "src/CMakeFiles/livesec.dir/controller/policy_parser.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/controller/policy_parser.cpp.o.d"
  "/root/repo/src/controller/routing_table.cpp" "src/CMakeFiles/livesec.dir/controller/routing_table.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/controller/routing_table.cpp.o.d"
  "/root/repo/src/controller/service_registry.cpp" "src/CMakeFiles/livesec.dir/controller/service_registry.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/controller/service_registry.cpp.o.d"
  "/root/repo/src/monitor/event.cpp" "src/CMakeFiles/livesec.dir/monitor/event.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/monitor/event.cpp.o.d"
  "/root/repo/src/monitor/event_store.cpp" "src/CMakeFiles/livesec.dir/monitor/event_store.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/monitor/event_store.cpp.o.d"
  "/root/repo/src/monitor/monitoring.cpp" "src/CMakeFiles/livesec.dir/monitor/monitoring.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/monitor/monitoring.cpp.o.d"
  "/root/repo/src/monitor/trace.cpp" "src/CMakeFiles/livesec.dir/monitor/trace.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/monitor/trace.cpp.o.d"
  "/root/repo/src/monitor/webui.cpp" "src/CMakeFiles/livesec.dir/monitor/webui.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/monitor/webui.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/CMakeFiles/livesec.dir/net/host.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/net/host.cpp.o.d"
  "/root/repo/src/net/middlebox.cpp" "src/CMakeFiles/livesec.dir/net/middlebox.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/net/middlebox.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/livesec.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/net/network.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/CMakeFiles/livesec.dir/net/traffic.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/net/traffic.cpp.o.d"
  "/root/repo/src/openflow/action.cpp" "src/CMakeFiles/livesec.dir/openflow/action.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/openflow/action.cpp.o.d"
  "/root/repo/src/openflow/channel.cpp" "src/CMakeFiles/livesec.dir/openflow/channel.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/openflow/channel.cpp.o.d"
  "/root/repo/src/openflow/flow_table.cpp" "src/CMakeFiles/livesec.dir/openflow/flow_table.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/openflow/flow_table.cpp.o.d"
  "/root/repo/src/openflow/match.cpp" "src/CMakeFiles/livesec.dir/openflow/match.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/openflow/match.cpp.o.d"
  "/root/repo/src/openflow/messages.cpp" "src/CMakeFiles/livesec.dir/openflow/messages.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/openflow/messages.cpp.o.d"
  "/root/repo/src/openflow/wire.cpp" "src/CMakeFiles/livesec.dir/openflow/wire.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/openflow/wire.cpp.o.d"
  "/root/repo/src/packet/dhcp.cpp" "src/CMakeFiles/livesec.dir/packet/dhcp.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/packet/dhcp.cpp.o.d"
  "/root/repo/src/packet/flow_key.cpp" "src/CMakeFiles/livesec.dir/packet/flow_key.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/packet/flow_key.cpp.o.d"
  "/root/repo/src/packet/headers.cpp" "src/CMakeFiles/livesec.dir/packet/headers.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/packet/headers.cpp.o.d"
  "/root/repo/src/packet/packet.cpp" "src/CMakeFiles/livesec.dir/packet/packet.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/packet/packet.cpp.o.d"
  "/root/repo/src/services/firewall/firewall_engine.cpp" "src/CMakeFiles/livesec.dir/services/firewall/firewall_engine.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/services/firewall/firewall_engine.cpp.o.d"
  "/root/repo/src/services/ids/aho_corasick.cpp" "src/CMakeFiles/livesec.dir/services/ids/aho_corasick.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/services/ids/aho_corasick.cpp.o.d"
  "/root/repo/src/services/ids/ids_engine.cpp" "src/CMakeFiles/livesec.dir/services/ids/ids_engine.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/services/ids/ids_engine.cpp.o.d"
  "/root/repo/src/services/ids/signature.cpp" "src/CMakeFiles/livesec.dir/services/ids/signature.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/services/ids/signature.cpp.o.d"
  "/root/repo/src/services/l7/l7_classifier.cpp" "src/CMakeFiles/livesec.dir/services/l7/l7_classifier.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/services/l7/l7_classifier.cpp.o.d"
  "/root/repo/src/services/message.cpp" "src/CMakeFiles/livesec.dir/services/message.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/services/message.cpp.o.d"
  "/root/repo/src/services/scanner/virus_scanner.cpp" "src/CMakeFiles/livesec.dir/services/scanner/virus_scanner.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/services/scanner/virus_scanner.cpp.o.d"
  "/root/repo/src/services/service_element.cpp" "src/CMakeFiles/livesec.dir/services/service_element.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/services/service_element.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/livesec.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/CMakeFiles/livesec.dir/sim/node.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/sim/node.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/livesec.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/switching/ethernet_switch.cpp" "src/CMakeFiles/livesec.dir/switching/ethernet_switch.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/switching/ethernet_switch.cpp.o.d"
  "/root/repo/src/switching/openflow_switch.cpp" "src/CMakeFiles/livesec.dir/switching/openflow_switch.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/switching/openflow_switch.cpp.o.d"
  "/root/repo/src/switching/spanning_tree.cpp" "src/CMakeFiles/livesec.dir/switching/spanning_tree.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/switching/spanning_tree.cpp.o.d"
  "/root/repo/src/switching/wifi_ap.cpp" "src/CMakeFiles/livesec.dir/switching/wifi_ap.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/switching/wifi_ap.cpp.o.d"
  "/root/repo/src/topology/link_table.cpp" "src/CMakeFiles/livesec.dir/topology/link_table.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/topology/link_table.cpp.o.d"
  "/root/repo/src/topology/lldp.cpp" "src/CMakeFiles/livesec.dir/topology/lldp.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/topology/lldp.cpp.o.d"
  "/root/repo/src/topology/topology_graph.cpp" "src/CMakeFiles/livesec.dir/topology/topology_graph.cpp.o" "gcc" "src/CMakeFiles/livesec.dir/topology/topology_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
